import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FittingError
from repro.fitting import FitOptions, PerfModel, fit_perf_model, r_squared, rmse, fit_diagnostics


def sample_curve(model, nodes, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    y = model(np.asarray(nodes, float))
    if noise:
        y = y * rng.lognormal(0.0, noise, size=y.shape)
    return y


class TestQualityMetrics:
    def test_perfect_fit_r2(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == 1.0

    def test_mean_prediction_r2_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_constant_observations(self):
        y = np.full(3, 5.0)
        assert r_squared(y, y) == 1.0
        assert r_squared(y, y + 1.0) == 0.0

    def test_rmse(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            r_squared([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])

    def test_diagnostics_bundle(self):
        y = np.array([10.0, 5.0, 2.0])
        p = np.array([11.0, 5.0, 2.0])
        d = fit_diagnostics(y, p)
        assert d.n_points == 3
        assert d.max_abs_pct_error == pytest.approx(10.0)
        assert 0.9 < d.r_squared <= 1.0


class TestInputValidation:
    def test_too_few_points(self):
        with pytest.raises(FittingError, match="at least 3"):
            fit_perf_model([1, 2], [3.0, 2.0])

    def test_duplicate_nodes_insufficient(self):
        with pytest.raises(FittingError, match="distinct"):
            fit_perf_model([4, 4, 4, 4], [3.0, 3.1, 2.9, 3.0])

    def test_nonpositive_nodes(self):
        with pytest.raises(FittingError, match="positive"):
            fit_perf_model([0, 1, 2], [3.0, 2.0, 1.0])

    def test_negative_times(self):
        with pytest.raises(FittingError):
            fit_perf_model([1, 2, 4], [3.0, -2.0, 1.0])

    def test_shape_mismatch(self):
        with pytest.raises(FittingError):
            fit_perf_model([1, 2, 4], [3.0, 2.0])


class TestRecovery:
    def test_recovers_amdahl_curve_exactly(self):
        truth = PerfModel(a=1000.0, d=10.0)
        nodes = np.array([1, 4, 16, 64, 256], float)
        res = fit_perf_model(nodes, truth(nodes))
        assert res.r_squared > 0.9999
        assert res.model.a == pytest.approx(1000.0, rel=1e-3)
        assert res.model.d == pytest.approx(10.0, rel=1e-2)

    def test_recovers_with_nonlinear_term(self):
        truth = PerfModel(a=2000.0, b=0.02, c=1.3, d=5.0)
        nodes = np.array([2, 8, 32, 128, 512, 2048], float)
        res = fit_perf_model(nodes, truth(nodes))
        assert res.r_squared > 0.999
        # prediction quality matters more than parameter identity
        probe = np.array([4.0, 64.0, 1024.0])
        np.testing.assert_allclose(res.model(probe), truth(probe), rtol=0.05)

    def test_three_points_freezes_b(self):
        truth = PerfModel(a=500.0, d=20.0)
        nodes = np.array([2, 16, 128], float)
        res = fit_perf_model(nodes, truth(nodes))
        assert res.model.b == 0.0
        assert res.r_squared > 0.999

    def test_noisy_fit_reasonable(self):
        truth = PerfModel(a=3000.0, d=15.0)
        nodes = np.array([4, 16, 64, 256, 1024], float)
        y = sample_curve(truth, nodes, noise=0.03, seed=1)
        res = fit_perf_model(nodes, y)
        assert res.r_squared > 0.98
        probe = np.array([32.0, 512.0])
        np.testing.assert_allclose(res.model(probe), truth(probe), rtol=0.15)

    def test_fit_is_deterministic_given_seed(self):
        truth = PerfModel(a=800.0, b=0.01, c=1.2, d=8.0)
        nodes = np.array([2, 8, 32, 128, 512], float)
        y = sample_curve(truth, nodes, noise=0.02, seed=3)
        r1 = fit_perf_model(nodes, y, FitOptions(seed=7))
        r2 = fit_perf_model(nodes, y, FitOptions(seed=7))
        assert r1.model == r2.model

    def test_convex_c_bounds_respected(self):
        truth = PerfModel(a=100.0, b=0.5, c=0.6, d=1.0)  # nonconvex truth
        nodes = np.array([1, 2, 4, 8, 16, 32], float)
        res = fit_perf_model(nodes, truth(nodes))
        assert res.model.c >= 1.0
        assert res.model.is_convex

    def test_unconstrained_c_allowed(self):
        truth = PerfModel(a=100.0, b=0.5, c=0.6, d=1.0)
        nodes = np.array([1, 2, 4, 8, 16, 32, 128], float)
        res = fit_perf_model(nodes, truth(nodes), FitOptions(c_bounds=(0.0, 3.0)))
        assert res.sse <= 1e-6 or res.r_squared > 0.999

    def test_local_optima_recorded(self):
        truth = PerfModel(a=900.0, d=4.0)
        nodes = np.array([1, 4, 16, 64, 256], float)
        res = fit_perf_model(nodes, truth(nodes))
        assert len(res.local_optima) == res.starts_tried >= 2

    def test_relative_loss_handles_wide_dynamic_range(self):
        """With multiplicative noise over 3 decades, the relative loss
        recovers the serial floor far better than the absolute loss."""
        truth = PerfModel(a=100_000.0, d=2.0)
        nodes = np.array([2, 8, 32, 128, 512, 2048, 8192], float)
        y = sample_curve(truth, nodes, noise=0.05, seed=5)
        abs_fit = fit_perf_model(nodes, y, FitOptions(loss="absolute"))
        rel_fit = fit_perf_model(nodes, y, FitOptions(loss="relative"))
        abs_err = abs(abs_fit.model(50_000.0) - truth(50_000.0)) / truth(50_000.0)
        rel_err = abs(rel_fit.model(50_000.0) - truth(50_000.0)) / truth(50_000.0)
        # absolute loss all but ignores the small-time tail (err ~7x here);
        # relative loss pins the serial floor to the right magnitude.
        assert rel_err < 0.25 * abs_err
        assert rel_err < 0.5
        assert rel_fit.model.d == pytest.approx(truth.d, rel=1.0)

    def test_relative_loss_matches_absolute_on_clean_data(self):
        truth = PerfModel(a=900.0, d=7.0)
        nodes = np.array([2, 8, 32, 128, 512], float)
        rel = fit_perf_model(nodes, truth(nodes), FitOptions(loss="relative"))
        probe = np.array([4.0, 64.0, 256.0])
        np.testing.assert_allclose(rel.model(probe), truth(probe), rtol=0.02)

    def test_unknown_loss_rejected(self):
        with pytest.raises(FittingError, match="unknown loss"):
            fit_perf_model([1, 2, 4], [3.0, 2.0, 1.0], FitOptions(loss="huber"))

    @given(
        a=st.floats(50.0, 5000.0),
        d=st.floats(0.5, 50.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_recovery_amdahl(self, a, d):
        truth = PerfModel(a=a, d=d)
        nodes = np.array([1, 4, 16, 64, 256, 1024], float)
        res = fit_perf_model(nodes, truth(nodes))
        probe = np.array([2.0, 32.0, 512.0])
        np.testing.assert_allclose(res.model(probe), truth(probe), rtol=0.02)
