import numpy as np
import pytest

from repro.fitting import PerfModel


class TestEvaluation:
    def test_scalar_and_vector(self):
        pm = PerfModel(a=100.0, b=0.01, c=1.2, d=5.0)
        assert pm(10.0) == pytest.approx(100 / 10 + 0.01 * 10**1.2 + 5)
        out = pm(np.array([1.0, 10.0]))
        assert out.shape == (2,)

    def test_parts_sum_to_total(self):
        pm = PerfModel(a=80.0, b=0.02, c=1.5, d=3.0)
        n = np.array([2.0, 8.0, 64.0])
        total = pm.scalable_part(n) + pm.nonlinear_part(n) + pm.serial_part
        np.testing.assert_allclose(total, pm(n))

    def test_serial_floor_dominates_at_scale(self):
        pm = PerfModel(a=1000.0, d=4.0)
        assert pm(1e7) == pytest.approx(4.0, rel=1e-3)

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            PerfModel(a=-1.0)
        with pytest.raises(ValueError):
            PerfModel(a=1.0, d=-0.1)

    def test_derivative_matches_numeric(self):
        pm = PerfModel(a=50.0, b=0.1, c=1.3, d=2.0)
        n0, h = 12.0, 1e-6
        numeric = (pm(n0 + h) - pm(n0 - h)) / (2 * h)
        assert pm.derivative(n0) == pytest.approx(numeric, rel=1e-5)


class TestStructure:
    def test_convexity_flag(self):
        assert PerfModel(a=1.0, b=0.0, c=0.5).is_convex  # b=0: c irrelevant
        assert PerfModel(a=1.0, b=0.1, c=1.0).is_convex
        assert not PerfModel(a=1.0, b=0.1, c=0.5).is_convex

    def test_expr_matches_callable(self):
        pm = PerfModel(a=120.0, b=0.05, c=1.4, d=7.0)
        e = pm.expr("n")
        for n in (1.0, 17.0, 300.0):
            assert e.evaluate({"n": n}) == pytest.approx(pm(n))

    def test_expr_omits_zero_b_term(self):
        pm = PerfModel(a=10.0, d=1.0)
        assert "**" not in repr(pm.expr("n"))

    def test_expr_is_convex_certifiable(self):
        from repro.expr import curvature

        pm = PerfModel(a=120.0, b=0.05, c=1.4, d=7.0)
        assert curvature(pm.expr("n")).is_convex()

    def test_as_tuple(self):
        assert PerfModel(1.0, 2.0, 1.5, 3.0).as_tuple() == (1.0, 2.0, 1.5, 3.0)


class TestNodeQueries:
    def test_min_nodes_for_time(self):
        pm = PerfModel(a=100.0, d=2.0)  # T(n) = 100/n + 2
        # T(n) <= 12 -> n >= 10
        assert pm.min_nodes_for_time(12.0, 100) == 10
        assert pm.min_nodes_for_time(1.0, 100) is None

    def test_best_nodes_monotone_curve(self):
        pm = PerfModel(a=100.0, d=2.0)
        assert pm.best_nodes(64) == 64

    def test_best_nodes_u_shaped_curve(self):
        pm = PerfModel(a=100.0, b=1.0, c=1.0, d=0.0)  # min at n = 10
        assert pm.best_nodes(100) == 10
