"""Kill-level chaos: SIGKILL a journaled fleet run, resume, compare.

The acceptance property for the whole durability stack: a run killed at a
chaos-chosen instant (``kill_instant`` picks how many cells may finish
first), then resumed from its journal, must produce a roll-up
*bit-identical* to a run that was never interrupted — on every execution
backend.

The ``chaos`` marker lets CI run these in a dedicated kill-matrix job
across several seeds (``pytest -m chaos`` with ``REPRO_CHAOS_SEEDS=0,1,2``);
the default suite runs seed 0 only.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import run_experiments
from repro.io.journal import RunJournal
from repro.resilience.chaos import kill_instant

SEEDS = [int(s) for s in os.environ.get("REPRO_CHAOS_SEEDS", "0").split(",")]

#: A batch small enough to re-run per backend but long enough that a kill
#: usually lands mid-run.
IDS = ["t3-1", "t3-2", "fig2", "fig4"]

_CHILD = """
import sys
from repro.experiments import run_experiments
run_experiments({ids!r}, seed={seed}, journal={journal!r},
                executor={executor!r}, workers=2)
"""

_references: dict = {}


def _reference(seed: int):
    """The uninterrupted serial roll-up, computed once per seed."""
    if seed not in _references:
        _references[seed] = run_experiments(IDS, seed=seed)
    return _references[seed]


def _run_child_and_kill(journal: Path, seed: int, executor: str) -> int:
    """Start a journaled fleet run in a child and SIGKILL it.

    The kill fires once the journal shows ``kill_instant(seed, n)`` cells
    finished — i.e. at a deterministic, seed-chosen point in the run's
    life.  Returns how many cells had finished when the child died (the
    child may legitimately win the race and finish everything).
    """
    target = kill_instant(seed, len(IDS))
    script = _CHILD.format(
        ids=IDS, seed=seed, journal=str(journal), executor=executor
    )
    child = subprocess.Popen([sys.executable, "-c", script], env=os.environ)
    try:
        deadline = time.monotonic() + 300.0
        while child.poll() is None and time.monotonic() < deadline:
            finished = 0
            if journal.exists():
                try:
                    finished = len(RunJournal.read(journal).completed)
                except Exception:
                    finished = 0  # mid-write; try again next tick
            if finished >= target:
                child.send_signal(signal.SIGKILL)
                break
            time.sleep(0.01)
    finally:
        child.wait(timeout=60)
    try:
        return len(RunJournal.read(journal).completed)
    except Exception:
        return 0


@pytest.mark.chaos
@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
@pytest.mark.parametrize("seed", SEEDS)
class TestKillResumeParity:
    def test_rollup_bit_identical_after_kill_and_resume(
        self, tmp_path, executor, seed
    ):
        journal = tmp_path / f"fleet-{executor}-s{seed}.jsonl"
        finished_at_kill = _run_child_and_kill(journal, seed, executor)

        state = RunJournal.read(journal)
        assert state.plan is not None, "the plan record must be durable"

        resumed = run_experiments(IDS, seed=seed, journal=journal)
        assert resumed == _reference(seed), (
            f"{executor} seed {seed}: resumed roll-up differs from the "
            f"uninterrupted run (killed with {finished_at_kill} cells done)"
        )
        final = RunJournal.read(journal)
        assert len(final.completed) == len(IDS)
        assert not final.torn_tail
        assert final.in_flight == []
