import numpy as np
import pytest

from repro.cesm import ComponentId, CoupledRunSimulator, make_case
from repro.exceptions import ConfigurationError
from repro.hslb import BenchmarkData, fit_components, gather_benchmarks
from repro.hslb.fitstep import fit_quality_summary

A, I = ComponentId.ATM, ComponentId.ICE


class TestBenchmarkData:
    def test_add_and_query(self):
        d = BenchmarkData()
        d.add(A, [8, 2, 4], [10.0, 40.0, 20.0])
        np.testing.assert_array_equal(d.nodes(A), [2, 4, 8])  # sorted
        np.testing.assert_array_equal(d.times(A), [40.0, 20.0, 10.0])
        assert d.point_count(A) == 3

    def test_accumulates_across_calls(self):
        d = BenchmarkData()
        d.add(A, [2, 4], [40.0, 20.0])
        d.add(A, [8], [10.0])
        assert d.point_count(A) == 3
        assert d.components() == [A]

    def test_length_mismatch(self):
        d = BenchmarkData()
        with pytest.raises(ConfigurationError):
            d.add(A, [1, 2], [3.0])

    @pytest.mark.parametrize(
        "times", [[float("nan")], [float("inf")], [-1.0]]
    )
    def test_corrupt_times_rejected(self, times):
        # Corrupted measurements must be refused here, where they first
        # enter the pipeline, not three stages later inside the fitter.
        d = BenchmarkData()
        with pytest.raises(ConfigurationError, match="atm.*finite"):
            d.add(A, [4], times)

    @pytest.mark.parametrize("nodes", [[0], [-2], [float("nan")]])
    def test_bad_node_counts_rejected(self, nodes):
        d = BenchmarkData()
        with pytest.raises(ConfigurationError, match="node counts"):
            d.add(A, nodes, [10.0])

    def test_rejected_batch_leaves_data_untouched(self):
        d = BenchmarkData()
        d.add(A, [2, 4], [40.0, 20.0])
        with pytest.raises(ConfigurationError):
            d.add(A, [8], [float("nan")])
        assert d.point_count(A) == 2


class TestGather:
    def test_gathers_all_four_components(self):
        sim = CoupledRunSimulator(make_case("1deg", 512, seed=3))
        data = gather_benchmarks(sim, points=5)
        assert len(data.components()) == 4
        for comp in data.components():
            assert data.point_count(comp) >= 4

    def test_sweep_spans_floor_to_job(self):
        case = make_case("1deg", 512, seed=3)
        data = gather_benchmarks(CoupledRunSimulator(case), points=5)
        nodes = data.nodes(A)
        lo, hi = case.component_bounds(A)
        assert nodes[0] == lo and nodes[-1] == hi

    def test_too_few_points_rejected(self):
        sim = CoupledRunSimulator(make_case("1deg", 512))
        with pytest.raises(ConfigurationError, match="at least 3"):
            gather_benchmarks(sim, points=2)

    def test_deterministic(self):
        case = make_case("1deg", 512, seed=11)
        d1 = gather_benchmarks(CoupledRunSimulator(case))
        d2 = gather_benchmarks(CoupledRunSimulator(case))
        np.testing.assert_array_equal(d1.times(I), d2.times(I))


class TestFitStep:
    def test_fits_every_component(self):
        sim = CoupledRunSimulator(make_case("1deg", 2048, seed=0))
        fits = fit_components(gather_benchmarks(sim))
        assert set(fits) == set(sim.case.optimized_components())
        summary = fit_quality_summary(fits)
        # The paper: R^2 very close to 1 for each component.
        for comp, r2 in summary.items():
            assert r2 > 0.95, f"{comp}: R^2 = {r2}"

    def test_fitted_curves_predict_truth(self):
        case = make_case("1deg", 2048, seed=0)
        sim = CoupledRunSimulator(case)
        fits = fit_components(gather_benchmarks(sim))
        truth = case.truth(A).law
        for n in (50, 500, 1500):
            assert fits[A].model(n) == pytest.approx(truth(n), rel=0.10)
