import pytest

from repro.cesm import ComponentId, Layout, make_case
from repro.exceptions import ConfigurationError
from repro.fitting import PerfModel
from repro.hslb import ObjectiveKind, build_layout_model
from repro.hslb.layout_models import VAR_NAMES, layout_model_for_case
from repro.model import to_ampl

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

PERF = {
    I: PerfModel(a=8000.0, d=18.0),
    L: PerfModel(a=1465.0, d=2.6),
    A: PerfModel(a=27000.0, d=45.0),
    O: PerfModel(a=7900.0, b=0.02, c=1.0, d=36.0),
}
BOUNDS = {I: (8, 2048), L: (4, 2048), A: (8, 2048), O: (8, 2048)}


def build(layout=Layout.HYBRID, objective=ObjectiveKind.MIN_MAX, N=128, **kw):
    return build_layout_model(layout, N, PERF, BOUNDS, objective=objective, **kw)


class TestLayout1Model:
    def test_variables_and_rows(self):
        m = build()
        for name in VAR_NAMES.values():
            assert name in m.variables
        assert "T" in m.variables and "T_icelnd" in m.variables
        names = set(m.constraints)
        assert {"t_icelnd_geq_ice_l15", "t_icelnd_geq_lnd_l16",
                "t_geq_icelnd_plus_atm_l17", "t_geq_ocn_l18",
                "node_na_no_leq_N_l20", "node_ni_nl_leq_na_l21"} <= names

    def test_convex_certified(self):
        assert build().is_certified_convex()

    def test_feasible_point_accepted(self):
        m = build()
        env = {
            "n_ice": 80.0, "n_lnd": 24.0, "n_atm": 104.0, "n_ocn": 24.0,
            "T_icelnd": 120.0, "T": 600.0,
        }
        assert m.check_point(env) == []

    def test_violating_node_rule_rejected(self):
        m = build()
        env = {
            "n_ice": 90.0, "n_lnd": 24.0, "n_atm": 104.0, "n_ocn": 24.0,
            "T_icelnd": 130.0, "T": 600.0,
        }
        assert "node_ni_nl_leq_na_l21" in m.check_point(env)

    def test_bounds_clipped_to_total(self):
        m = build(N=64)
        assert m.variables["n_atm"].ub == 64.0

    def test_empty_box_raises(self):
        bad = dict(BOUNDS)
        bad[I] = (500, 2048)
        with pytest.raises(ConfigurationError, match="empty node box"):
            build_layout_model(Layout.HYBRID, 128, PERF, bad)

    def test_missing_perf_raises(self):
        with pytest.raises(ConfigurationError, match="missing performance"):
            build_layout_model(Layout.HYBRID, 128, {A: PERF[A]}, BOUNDS)


class TestAllowedSets:
    def test_ocean_sos(self):
        m = build(ocn_allowed=[16, 24, 48, 96])
        assert "z_ocn" in m.sos1_sets

    def test_ocean_values_filtered_to_box(self):
        m = build(ocn_allowed=[2, 4, 16, 24, 28])  # 2, 4 below the floor of 8
        assert len(m.sos1_sets["z_ocn"]) == 3

    def test_ocean_empty_after_filter(self):
        with pytest.raises(ConfigurationError, match="ocean"):
            build(ocn_allowed=[2, 4])

    def test_atm_explicit_values(self):
        m = build(atm_allowed={"values": [16, 64, 100], "lo": 16, "hi": 100})
        assert "z_atm" in m.sos1_sets

    def test_atm_range_tightens_bounds(self):
        m = build(atm_allowed={"values": None, "lo": 10, "hi": 120})
        v = m.variables["n_atm"]
        assert (v.lb, v.ub) == (10.0, 120.0)


class TestOtherLayoutsAndObjectives:
    def test_layout2_rows(self):
        m = build(layout=Layout.SEQUENTIAL_SPLIT)
        assert "t_geq_ice_lnd_atm_l22" in m.constraints
        assert "node_lnd_leq_N_minus_no_l24" in m.constraints

    def test_layout3_rows(self):
        m = build(layout=Layout.FULLY_SEQUENTIAL)
        assert "t_geq_all_l27" in m.constraints
        # no coupling node rows beyond the boxes
        assert not any(n.startswith("node_") for n in m.constraints)

    def test_min_sum_objective_nonlinear(self):
        m = build(objective=ObjectiveKind.MIN_SUM)
        assert m.objective.name == "sum_time"
        assert "T" not in m.variables
        assert m.is_certified_convex()

    def test_max_min_not_convex(self):
        m = build(objective=ObjectiveKind.MAX_MIN)
        assert not m.is_certified_convex()
        assert not ObjectiveKind.MAX_MIN.bnb_solvable

    def test_tsync_rows_present_and_nonconvex(self):
        m = build(tsync=5.0)
        assert "sync_lnd_geq_ice_l19a" in m.constraints
        assert "sync_lnd_leq_ice_l19b" in m.constraints
        assert not m.is_certified_convex()

    def test_tsync_layout2_rejected(self):
        with pytest.raises(ConfigurationError, match="layout 1"):
            build(layout=Layout.SEQUENTIAL_SPLIT, tsync=5.0)

    def test_objective_equation_numbers(self):
        assert ObjectiveKind.MIN_MAX.paper_equation == 1
        assert ObjectiveKind.MAX_MIN.paper_equation == 2
        assert ObjectiveKind.MIN_SUM.paper_equation == 3


class TestFineTuning:
    FULL_PERF = dict(PERF)
    FULL_PERF[ComponentId.RTM] = PerfModel(a=60.0, d=1.0)
    FULL_PERF[ComponentId.CPL] = PerfModel(a=120.0, d=2.0)

    def test_model_charges_riding_components(self):
        m = build_layout_model(
            Layout.HYBRID, 128, self.FULL_PERF, BOUNDS, fine_tuning=True
        )
        # objective is now T plus the CPL/RTM curves -> nonlinear
        assert m.objective.name == "total_time"
        env = {
            "n_ice": 80.0, "n_lnd": 24.0, "n_atm": 104.0, "n_ocn": 24.0,
            "T_icelnd": 120.0, "T": 600.0,
        }
        plain = build_layout_model(Layout.HYBRID, 128, self.FULL_PERF, BOUNDS)
        extra = (
            m.objective.expr.evaluate(env) - plain.objective.expr.evaluate(env)
        )
        expected = self.FULL_PERF[ComponentId.CPL](104) + self.FULL_PERF[
            ComponentId.RTM
        ](24)
        assert extra == pytest.approx(expected)

    def test_still_convex_certified(self):
        m = build_layout_model(
            Layout.HYBRID, 128, self.FULL_PERF, BOUNDS, fine_tuning=True
        )
        assert m.is_certified_convex()

    def test_missing_riding_fits_rejected(self):
        with pytest.raises(ConfigurationError, match="fine-tuning needs"):
            build_layout_model(Layout.HYBRID, 128, PERF, BOUNDS, fine_tuning=True)

    def test_layout2_rejected(self):
        with pytest.raises(ConfigurationError, match="layout 1"):
            build_layout_model(
                Layout.SEQUENTIAL_SPLIT, 128, self.FULL_PERF, BOUNDS,
                fine_tuning=True,
            )

    def test_oracle_method_rejected(self):
        from repro.cesm import make_case
        from repro.hslb import solve_allocation

        case = make_case("1deg", 128)
        with pytest.raises(ConfigurationError, match="oracle"):
            solve_allocation(
                case, self.FULL_PERF, method="oracle", fine_tuning=True
            )


class TestForCase:
    def test_case_model_builds_and_exports(self):
        case = make_case("1deg", 128)
        model = layout_model_for_case(case, PERF)
        text = to_ampl(model)
        assert "n_atm" in text and "minimize total_time" in text

    def test_case_model_has_ocean_set(self):
        case = make_case("1deg", 2048)
        model = layout_model_for_case(case, PERF)
        assert "z_ocn" in model.sos1_sets

    def test_unconstrained_ocean_uses_progression(self):
        case = make_case("8th", 32768, unconstrained_ocean=True)
        perf = {
            I: PerfModel(a=1.9e6, d=110.0),
            L: PerfModel(a=59000.0, d=23.0),
            A: PerfModel(a=1.3e7, d=290.0),
            O: PerfModel(a=8.1e6, d=424.0),
        }
        model = layout_model_for_case(case, perf)
        assert model.sos1_sets == {}  # even range -> progression encoding
        assert "z_ocn_idx" in model.variables
