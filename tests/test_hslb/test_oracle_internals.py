"""Property tests for the oracle's fast pair stage against the O(N^2) scan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cesm import ComponentId, Layout
from repro.fitting import PerfModel
from repro.hslb import LayoutOracle

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


def make_oracle(ai, al, di, dl, N):
    perf = {
        I: PerfModel(a=ai, d=di),
        L: PerfModel(a=al, d=dl),
        A: PerfModel(a=1000.0, d=5.0),
        O: PerfModel(a=1000.0, d=5.0),
    }
    bounds = {I: (1, N), L: (1, N), A: (2, N), O: (1, N)}
    return LayoutOracle(Layout.HYBRID, N, perf, bounds)


class TestPairStageEquivalence:
    @given(
        ai=st.floats(10.0, 2000.0),
        al=st.floats(10.0, 2000.0),
        di=st.floats(0.0, 10.0),
        dl=st.floats(0.0, 10.0),
        N=st.integers(6, 60),
    )
    @settings(max_examples=40, deadline=None)
    def test_fast_pair_matches_scan(self, ai, al, di, dl, N):
        """The O(N log N) bisection pair table must equal the O(N^2) scan
        for every budget (no T_sync, min-max combine)."""
        oracle = make_oracle(ai, al, di, dl, N)
        cap = N - 1
        fast, fast_choice = oracle._pair_minmax(cap)
        scan, scan_choice = oracle._pair_scan(cap, "minmax", tsync=None)
        np.testing.assert_allclose(fast, scan, rtol=1e-12)
        # the realizing (ni, nl) must be feasible and achieve the value
        for m in range(cap + 1):
            if np.isfinite(fast[m]):
                ni, nl = fast_choice[m]
                assert ni + nl <= m
                value = max(oracle.ice.at(int(ni)), oracle.lnd.at(int(nl)))
                assert value == pytest.approx(fast[m], rel=1e-9)

    def test_pair_table_monotone(self):
        oracle = make_oracle(500.0, 300.0, 2.0, 1.0, 40)
        pair, _ = oracle._pair_minmax(39)
        finite = pair[np.isfinite(pair)]
        assert np.all(np.diff(finite) <= 1e-12)

    def test_tsync_scan_never_below_unconstrained(self):
        oracle = make_oracle(500.0, 300.0, 2.0, 1.0, 30)
        free, _ = oracle._pair_scan(29, "minmax", tsync=None)
        banded, _ = oracle._pair_scan(29, "minmax", tsync=5.0)
        mask = np.isfinite(banded)
        assert np.all(banded[mask] >= free[mask] - 1e-12)
