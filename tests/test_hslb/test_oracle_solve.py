import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cesm import ComponentId, Layout, make_case
from repro.exceptions import ConfigurationError
from repro.fitting import PerfModel
from repro.hslb import LayoutOracle, ObjectiveKind, solve_allocation
from repro.hslb.oracle import oracle_for_case

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


def small_perf(seed_vals=(900.0, 300.0, 4000.0, 1500.0)):
    ai, al, aa, ao = seed_vals
    return {
        I: PerfModel(a=ai, d=3.0),
        L: PerfModel(a=al, d=1.0),
        A: PerfModel(a=aa, d=8.0),
        O: PerfModel(a=ao, d=5.0),
    }


def brute_force_layout1(perf, bounds, N, objective=ObjectiveKind.MIN_MAX,
                        tsync=None, ocn_allowed=None):
    """Reference enumeration over every 4-tuple (small N only)."""
    best_val = math.inf if objective is not ObjectiveKind.MAX_MIN else -math.inf
    best = None
    lo_i, hi_i = bounds[I]
    lo_l, hi_l = bounds[L]
    lo_a, hi_a = bounds[A]
    lo_o, hi_o = bounds[O]
    o_vals = ocn_allowed or range(lo_o, hi_o + 1)
    for na in range(lo_a, min(hi_a, N) + 1):
        for no in o_vals:
            if not (lo_o <= no <= hi_o) or na + no > N:
                continue
            for ni in range(lo_i, min(hi_i, na) + 1):
                for nl in range(lo_l, min(hi_l, na - ni) + 1):
                    if objective is ObjectiveKind.MAX_MIN and (
                        ni + nl != na or na + no != N
                    ):
                        continue
                    ti, tl = perf[I](ni), perf[L](nl)
                    ta, to = perf[A](na), perf[O](no)
                    if tsync is not None and abs(tl - ti) > tsync:
                        continue
                    if objective is ObjectiveKind.MIN_MAX:
                        val = max(max(ti, tl) + ta, to)
                        better = val < best_val
                    elif objective is ObjectiveKind.MIN_SUM:
                        val = ti + tl + ta + to
                        better = val < best_val
                    else:
                        val = min(ti, tl, ta, to)
                        better = val > best_val
                    if better:
                        best_val, best = val, {I: ni, L: nl, A: na, O: no}
    return best_val, best


SMALL_BOUNDS = {I: (1, 20), L: (1, 20), A: (2, 20), O: (1, 20)}


class TestOracleAgainstBruteForce:
    def test_minmax_small(self):
        perf = small_perf()
        oracle = LayoutOracle(Layout.HYBRID, 20, perf, SMALL_BOUNDS)
        res = oracle.solve()
        ref_val, _ = brute_force_layout1(perf, SMALL_BOUNDS, 20)
        assert res.objective_value == pytest.approx(ref_val)

    def test_minmax_with_ocean_set(self):
        perf = small_perf()
        oracle = LayoutOracle(
            Layout.HYBRID, 20, perf, SMALL_BOUNDS, ocn_allowed=[2, 6, 8]
        )
        res = oracle.solve()
        ref_val, _ = brute_force_layout1(perf, SMALL_BOUNDS, 20, ocn_allowed=[2, 6, 8])
        assert res.objective_value == pytest.approx(ref_val)
        assert res.allocation[O] in (2, 6, 8)

    def test_minsum_small(self):
        perf = small_perf()
        oracle = LayoutOracle(Layout.HYBRID, 16, perf, SMALL_BOUNDS)
        res = oracle.solve(objective=ObjectiveKind.MIN_SUM)
        ref_val, _ = brute_force_layout1(
            perf, SMALL_BOUNDS, 16, ObjectiveKind.MIN_SUM
        )
        assert res.objective_value == pytest.approx(ref_val)

    def test_maxmin_small(self):
        perf = small_perf()
        oracle = LayoutOracle(Layout.HYBRID, 16, perf, SMALL_BOUNDS)
        res = oracle.solve(objective=ObjectiveKind.MAX_MIN)
        ref_val, _ = brute_force_layout1(
            perf, SMALL_BOUNDS, 16, ObjectiveKind.MAX_MIN
        )
        assert res.objective_value == pytest.approx(ref_val)

    def test_tsync_small(self):
        perf = small_perf()
        oracle = LayoutOracle(Layout.HYBRID, 20, perf, SMALL_BOUNDS)
        res = oracle.solve(tsync=30.0)
        ref_val, _ = brute_force_layout1(perf, SMALL_BOUNDS, 20, tsync=30.0)
        assert res.objective_value == pytest.approx(ref_val)

    @given(
        ai=st.floats(100.0, 2000.0),
        aa=st.floats(500.0, 8000.0),
        ao=st.floats(100.0, 4000.0),
        N=st.integers(6, 24),
    )
    @settings(max_examples=20, deadline=None)
    def test_minmax_property(self, ai, aa, ao, N):
        perf = small_perf((ai, 300.0, aa, ao))
        oracle = LayoutOracle(Layout.HYBRID, N, perf, SMALL_BOUNDS)
        try:
            res = oracle.solve()
        except ConfigurationError:
            ref_val, ref = brute_force_layout1(perf, SMALL_BOUNDS, N)
            assert ref is None
            return
        ref_val, _ = brute_force_layout1(perf, SMALL_BOUNDS, N)
        assert res.objective_value == pytest.approx(ref_val, rel=1e-9)


class TestOracleLayouts23:
    def test_layout2_matches_enumeration(self):
        perf = small_perf()
        oracle = LayoutOracle(Layout.SEQUENTIAL_SPLIT, 20, perf, SMALL_BOUNDS)
        res = oracle.solve()
        best = math.inf
        for no in range(1, 20):
            cap = 20 - no
            if cap < 2:
                continue
            stage = (
                min(perf[I](n) for n in range(1, cap + 1))
                + min(perf[L](n) for n in range(1, cap + 1))
                + min(perf[A](n) for n in range(2, cap + 1) if n >= 2)
                if cap >= 2 else math.inf
            )
            best = min(best, max(stage, perf[O](no)))
        assert res.objective_value == pytest.approx(best)

    def test_layout3_independent_minima(self):
        perf = small_perf()
        oracle = LayoutOracle(Layout.FULLY_SEQUENTIAL, 20, perf, SMALL_BOUNDS)
        res = oracle.solve()
        expected = sum(
            min(perf[c](n) for n in range(SMALL_BOUNDS[c][0], 21))
            for c in (I, L, A, O)
        )
        assert res.objective_value == pytest.approx(expected)

    def test_layouts_1_and_2_similar_at_scale(self):
        """At the calibrated 1-degree scale layout 1 edges out layout 2
        and both beat layout 3 (paper Fig. 4)."""
        from repro.cesm import ground_truth

        perf = {c: ground_truth("1deg")[c].law for c in (I, L, A, O)}
        bounds = {I: (8, 2048), L: (4, 2048), A: (8, 2048), O: (8, 2048)}
        totals = {
            layout: LayoutOracle(layout, 512, perf, bounds).solve().makespan
            for layout in Layout
        }
        assert totals[Layout.HYBRID] <= totals[Layout.SEQUENTIAL_SPLIT] * 1.02
        assert totals[Layout.FULLY_SEQUENTIAL] > 1.3 * totals[Layout.HYBRID]

    def test_maxmin_only_layout1(self):
        perf = small_perf()
        oracle = LayoutOracle(Layout.FULLY_SEQUENTIAL, 20, perf, SMALL_BOUNDS)
        with pytest.raises(ConfigurationError):
            oracle.solve(objective=ObjectiveKind.MAX_MIN)

    def test_brute_force_gate(self):
        perf = small_perf()
        big = {c: (1, 20000) for c in (I, L, A, O)}
        oracle = LayoutOracle(Layout.HYBRID, 20000, perf, big)
        with pytest.raises(ConfigurationError, match="pair scan"):
            oracle.solve(tsync=1.0)


class TestSolveAllocationAgreement:
    """The three decision engines must agree on real cases."""

    def setup_fits(self, case):
        from repro.cesm import CoupledRunSimulator
        from repro.hslb import fit_components, gather_benchmarks

        sim = CoupledRunSimulator(case)
        return fit_components(gather_benchmarks(sim))

    @pytest.mark.parametrize("nodes", [128, 512])
    def test_lpnlp_matches_oracle_1deg(self, nodes):
        case = make_case("1deg", nodes, seed=1)
        fits = self.setup_fits(case)
        a = solve_allocation(case, fits, method="lpnlp")
        b = solve_allocation(case, fits, method="oracle")
        assert a.objective_value == pytest.approx(b.objective_value, rel=1e-4)

    def test_bnb_matches_oracle(self):
        case = make_case("1deg", 128, seed=2)
        fits = self.setup_fits(case)
        a = solve_allocation(case, fits, method="bnb")
        b = solve_allocation(case, fits, method="oracle")
        assert a.objective_value == pytest.approx(b.objective_value, rel=1e-3)

    def test_8th_constrained_agreement(self):
        case = make_case("8th", 8192, seed=0)
        fits = self.setup_fits(case)
        a = solve_allocation(case, fits, method="lpnlp")
        b = solve_allocation(case, fits, method="oracle")
        assert a.objective_value == pytest.approx(b.objective_value, rel=1e-4)
        assert a.allocation[O] == b.allocation[O]

    def test_nonconvex_variants_rejected_by_bnb(self):
        case = make_case("1deg", 128, seed=0)
        fits = self.setup_fits(case)
        with pytest.raises(ConfigurationError, match="oracle"):
            solve_allocation(case, fits, objective=ObjectiveKind.MAX_MIN)
        with pytest.raises(ConfigurationError, match="oracle"):
            solve_allocation(case, fits, tsync=5.0)

    def test_unknown_method(self):
        case = make_case("1deg", 128)
        with pytest.raises(ConfigurationError, match="unknown solve method"):
            solve_allocation(case, small_perf(), method="magic")

    def test_oracle_for_case_runs(self):
        case = make_case("1deg", 128, seed=0)
        fits = self.setup_fits(case)
        res = oracle_for_case(case, fits).solve()
        assert res.nodes_used() <= 2 * case.total_nodes  # ice/lnd share atm nodes
        assert res.makespan > 0
