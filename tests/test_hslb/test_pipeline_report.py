import pytest

from repro.cesm import ComponentId, make_case
from repro.cesm.layouts import validate_allocation
from repro.hslb import HSLBPipeline, format_table3_block

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


class TestPipeline:
    def test_run_produces_consistent_result(self):
        case = make_case("1deg", 128, seed=0)
        result = HSLBPipeline(case).run()
        validate_allocation(case.layout, result.allocation, 128)
        assert result.predicted_total > 0
        assert result.actual_total > 0
        assert result.prediction_error() < 0.15
        assert set(result.fits) == set(case.optimized_components())

    def test_steps_compose_like_run(self):
        case = make_case("1deg", 128, seed=5)
        p1, p2 = HSLBPipeline(case), HSLBPipeline(case)
        whole = p1.run()
        data = p2.gather()
        outcome = p2.solve(p2.fit(data))
        assert outcome.allocation == whole.allocation

    def test_seed_override_changes_case(self):
        case = make_case("1deg", 128, seed=0)
        p = HSLBPipeline(case, seed=99)
        assert p.case.seed == 99
        assert p.case.total_nodes == 128

    def test_predicted_tracks_solver_objective(self):
        case = make_case("1deg", 512, seed=1)
        result = HSLBPipeline(case).run()
        assert result.predicted_total == pytest.approx(
            result.solve.objective_value, rel=1e-3
        )

    def test_oracle_method_pipeline(self):
        case = make_case("1deg", 128, seed=0)
        res_oracle = HSLBPipeline(case, method="oracle").run()
        res_lpnlp = HSLBPipeline(case, method="lpnlp").run()
        assert res_oracle.predicted_total == pytest.approx(
            res_lpnlp.predicted_total, rel=1e-4
        )

    def test_paper_shape_1deg_128(self):
        """The headline sanity check: our HSLB at the paper's configuration
        lands near the paper's totals (410.6 predicted / 425.2 actual)."""
        result = HSLBPipeline(make_case("1deg", 128, seed=0)).run()
        assert result.predicted_total == pytest.approx(410.6, rel=0.05)
        assert result.actual_total == pytest.approx(425.2, rel=0.05)

    def test_report_contains_all_components(self):
        result = HSLBPipeline(make_case("1deg", 128, seed=0)).run()
        text = result.report()
        for comp in ("lnd", "ice", "atm", "ocn"):
            assert comp in text
        assert "Total time, sec" in text
        assert "128 nodes" in text


class TestFormatTable3Block:
    def test_with_manual_columns(self):
        nodes = {L: 24, I: 80, A: 104, O: 24}
        times = {L: 63.7, I: 109.0, A: 306.9, O: 362.6}
        text = format_table3_block(
            "demo", nodes, times, nodes, times, times,
            manual_total=416.0, predicted_total=410.0, actual_total=425.0,
        )
        assert "manual # nodes" in text
        assert "416.000" in text and "425.000" in text

    def test_without_manual_columns(self):
        nodes = {L: 24, I: 80, A: 104, O: 24}
        times = {L: 63.7, I: 109.0, A: 306.9, O: 362.6}
        text = format_table3_block(
            "demo", None, None, nodes, times, None, predicted_total=410.0
        )
        assert "manual" not in text
        assert "HSLB predicted" in text
