"""Cross-cutting integration and property tests.

These exist to make the reproduction *self-verifying*: the two
branch-and-bound solvers and the enumeration oracle must agree on randomly
generated layout problems, the pipeline must be stable across noise seeds,
and corrupted inputs must fail loudly instead of silently degrading."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cesm import ComponentId, CoupledRunSimulator, Layout, make_case
from repro.exceptions import FittingError
from repro.fitting import PerfModel, fit_perf_model
from repro.hslb import HSLBPipeline, LayoutOracle
from repro.hslb.layout_models import build_layout_model
from repro.minlp import MINLPOptions, MINLPStatus, solve_lpnlp, solve_nlp_bnb

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


@st.composite
def random_layout_instance(draw):
    """A random small layout-1 problem over convex performance curves."""
    def pm():
        # b and d keep exact zero but exclude the (0, 0.01) sliver: floats
        # like 5e-170 are meaningless as performance coefficients yet their
        # vanishing curvature stalls the barrier solver for minutes.
        return PerfModel(
            a=draw(st.floats(50.0, 5000.0)),
            b=draw(st.one_of(st.just(0.0), st.floats(0.01, 0.5))),
            c=draw(st.floats(1.0, 1.6)),
            d=draw(st.one_of(st.just(0.0), st.floats(0.1, 20.0))),
        )

    perf = {c: pm() for c in (I, L, A, O)}
    N = draw(st.integers(8, 40))
    ocn_allowed = draw(
        st.one_of(
            st.none(),
            st.lists(st.integers(1, 40), min_size=2, max_size=5, unique=True),
        )
    )
    return perf, N, ocn_allowed


class TestSolverAgreementProperty:
    @given(instance=random_layout_instance())
    @settings(max_examples=20, deadline=None)
    def test_lpnlp_matches_oracle(self, instance):
        perf, N, ocn_allowed = instance
        bounds = {c: (1, N) for c in (I, L, A, O)}
        bounds[A] = (2, N)
        try:
            oracle = LayoutOracle(
                Layout.HYBRID, N, perf, bounds, ocn_allowed=ocn_allowed
            )
            expected = oracle.solve()
        except Exception:
            return  # infeasible random instance: nothing to compare
        model = build_layout_model(
            Layout.HYBRID, N, perf, bounds, ocn_allowed=ocn_allowed
        )
        res = solve_lpnlp(model, MINLPOptions(time_limit=60.0))
        if res.status is MINLPStatus.TIME_LIMIT:
            # Rare adversarial draws (vanishing-curvature curves over a
            # small irregular ocean set) can exhaust the budget without a
            # certificate.  Certify the draw deterministically instead of
            # skipping it: re-solve a fresh model with a raised budget, and
            # *require* the optimum — an uncertifiable instance is a real
            # solver failure, not flake to be waved through.
            model = build_layout_model(
                Layout.HYBRID, N, perf, bounds, ocn_allowed=ocn_allowed
            )
            res = solve_lpnlp(model, MINLPOptions(time_limit=240.0))
        assert res.is_optimal
        assert res.objective == pytest.approx(
            expected.objective_value, rel=1e-4, abs=1e-6
        )

    @given(instance=random_layout_instance())
    @settings(max_examples=8, deadline=None)
    def test_nlp_bnb_matches_oracle(self, instance):
        perf, N, ocn_allowed = instance
        bounds = {c: (1, N) for c in (I, L, A, O)}
        bounds[A] = (2, N)
        try:
            oracle = LayoutOracle(
                Layout.HYBRID, N, perf, bounds, ocn_allowed=ocn_allowed
            )
            expected = oracle.solve()
        except Exception:
            return
        model = build_layout_model(
            Layout.HYBRID, N, perf, bounds, ocn_allowed=ocn_allowed
        )
        res = solve_nlp_bnb(model, MINLPOptions(time_limit=120.0))
        if res.status is MINLPStatus.TIME_LIMIT:
            # Same deterministic certification as the lpnlp variant above.
            model = build_layout_model(
                Layout.HYBRID, N, perf, bounds, ocn_allowed=ocn_allowed
            )
            res = solve_nlp_bnb(model, MINLPOptions(time_limit=480.0))
        assert res.is_optimal
        # barrier tolerance is looser than the LP path
        assert res.objective == pytest.approx(
            expected.objective_value, rel=1e-3, abs=1e-4
        )


class TestSeedStability:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_1deg_128_quality_across_seeds(self, seed):
        """The tie-with-the-expert result holds for any noise realization,
        not just the documented seed."""
        result = HSLBPipeline(make_case("1deg", 128, seed=seed)).run()
        manual = result.case and CoupledRunSimulator(result.case).run_coupled(
            {"lnd": 24, "ice": 80, "atm": 104, "ocn": 24}
        )
        assert result.actual_total <= manual.total * 1.08
        assert result.prediction_error() < 0.12

    def test_allocation_stable_under_seed_change(self):
        allocations = [
            HSLBPipeline(make_case("1deg", 512, seed=s)).run().allocation
            for s in (0, 7)
        ]
        # ocean choice should be within a couple of allowed steps
        assert abs(allocations[0][O] - allocations[1][O]) <= 16


class TestFailureInjection:
    def test_outlier_benchmark_point_degrades_gracefully(self):
        truth = PerfModel(a=3000.0, d=10.0)
        nodes = np.array([4, 16, 64, 256, 1024], float)
        y = truth(nodes)
        y[2] *= 3.0  # a 3x outlier (e.g. a node ran degraded)
        fit = fit_perf_model(nodes, y)
        # the fit completes and flags its quality honestly
        assert fit.r_squared < 0.995
        assert fit.model.a > 0

    def test_all_identical_times_fit(self):
        # A perfectly serial component: flat curve must fit with a ~= 0.
        nodes = np.array([2, 8, 32, 128], float)
        fit = fit_perf_model(nodes, np.full(4, 42.0))
        assert fit.model.d == pytest.approx(42.0, rel=0.05)
        assert fit.model(1e6) == pytest.approx(42.0, rel=0.05)

    def test_zero_time_component(self):
        nodes = np.array([2, 8, 32], float)
        fit = fit_perf_model(nodes, np.zeros(3))
        assert fit.model(16.0) == pytest.approx(0.0, abs=1e-6)

    def test_nan_benchmark_rejected(self):
        with pytest.raises(FittingError):
            fit_perf_model([1, 2, 4], [1.0, float("nan"), 0.5])

    def test_solver_reports_infeasible_not_garbage(self):
        perf = {c: PerfModel(a=100.0, d=1.0) for c in (I, L, A, O)}
        bounds = {I: (8, 32), L: (8, 32), A: (8, 14), O: (8, 32)}
        # ni + nl <= na is impossible: 8 + 8 > 14.
        model = build_layout_model(Layout.HYBRID, 64, perf, bounds)
        res = solve_lpnlp(model)
        assert not res.is_optimal
        assert res.solution is None

    def test_pipeline_rejects_impossible_job(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            HSLBPipeline(make_case("8th", 400)).run()  # below ocean min set
