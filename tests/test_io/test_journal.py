"""Run-journal semantics: append durability, torn-tail repair, corruption.

The invariant under test: after a SIGKILL at *any* byte boundary, a
journal re-opens to exactly the records that were acknowledged, minus at
most the one torn tail record the kill interrupted — and damage anywhere
other than the tail is a loud :class:`~repro.exceptions.JournalError`,
never a silently shortened history.
"""

import json

import pytest

from repro.exceptions import JournalError
from repro.io.journal import RunJournal
from repro.resilience.chaos import corrupt_file
from repro.spec.schema import SCHEMA_VERSION


def _seed_journal(path):
    """A journal with one plan, one finished cell, one in-flight cell."""
    with RunJournal.open(path) as journal:
        journal.plan(["t3-1", "fig2"], 0)
        journal.start("spec:aaa", "t3-1")
        journal.finish("spec:aaa", "t3-1", "rendered A")
        journal.start("spec:bbb", "fig2")
    return path


class TestRoundTrip:
    def test_missing_file_reads_empty(self, tmp_path):
        state = RunJournal.read(tmp_path / "absent.jsonl")
        assert state.plan is None
        assert state.records == 0
        assert not state.torn_tail

    def test_records_round_trip(self, tmp_path):
        path = _seed_journal(tmp_path / "run.jsonl")
        state = RunJournal.read(path)
        assert state.plan == {"experiment_ids": ["t3-1", "fig2"], "seed": 0}
        assert state.completed["spec:aaa"]["rendered"] == "rendered A"
        assert state.in_flight == ["spec:bbb"]
        assert state.records == 4
        assert not state.torn_tail

    def test_poison_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.open(path) as journal:
            journal.plan(["t3-1"], 3)
            journal.start("spec:ccc", "t3-1")
            journal.poison("spec:ccc", "t3-1", 4, "crash", "worker died")
        state = RunJournal.read(path)
        record = state.poisoned["spec:ccc"]
        assert record["attempts"] == 4
        assert record["reason"] == "crash"
        assert state.in_flight == []

    def test_records_are_schema_stamped(self, tmp_path):
        path = _seed_journal(tmp_path / "run.jsonl")
        first = json.loads(path.read_text().splitlines()[0])
        assert first["format"] == "repro/journal"
        assert first["schema_version"] == SCHEMA_VERSION

    def test_reopen_continues_sequence(self, tmp_path):
        path = _seed_journal(tmp_path / "run.jsonl")
        with RunJournal.open(path) as journal:
            assert not journal.is_new
            journal.finish("spec:bbb", "fig2", "rendered B")
        state = RunJournal.read(path)
        assert [json.loads(line)["seq"] for line in path.read_text().splitlines()] == [
            0, 1, 2, 3, 4,
        ]
        assert len(state.completed) == 2

    def test_describe_mentions_the_essentials(self, tmp_path):
        state = RunJournal.read(_seed_journal(tmp_path / "run.jsonl"))
        text = state.describe()
        assert "1 finished" in text
        assert "1 in flight" in text
        assert "seed=0" in text


class TestTornTail:
    def test_partial_final_line_is_dropped(self, tmp_path):
        path = _seed_journal(tmp_path / "run.jsonl")
        path.write_bytes(path.read_bytes() + b'{"op":"finish","spec_k')
        state = RunJournal.read(path)
        assert state.torn_tail
        assert state.records == 4, "acknowledged records survive the kill"

    def test_unparsable_final_line_is_dropped(self, tmp_path):
        path = _seed_journal(tmp_path / "run.jsonl")
        path.write_bytes(path.read_bytes() + b"\x00\xff garbage\n")
        state = RunJournal.read(path)
        assert state.torn_tail
        assert state.records == 4

    def test_open_truncates_the_torn_tail_and_appends(self, tmp_path):
        path = _seed_journal(tmp_path / "run.jsonl")
        good_bytes = path.stat().st_size
        path.write_bytes(path.read_bytes() + b'{"op":"fin')
        with RunJournal.open(path) as journal:
            assert journal.state.torn_tail, "the repair is reported"
            journal.finish("spec:bbb", "fig2", "rendered B")
        state = RunJournal.read(path)
        assert not state.torn_tail
        assert state.records == 5
        assert path.stat().st_size > good_bytes

    def test_chaos_truncation_is_recoverable(self, tmp_path):
        path = _seed_journal(tmp_path / "run.jsonl")
        corrupt_file(path, seed=0, mode="truncate")
        state = RunJournal.read(path)  # must not raise
        assert state.records < 4 or state.torn_tail

    def test_chaos_torn_tail_is_recoverable(self, tmp_path):
        path = _seed_journal(tmp_path / "run.jsonl")
        corrupt_file(path, seed=0, mode="torn-tail")
        state = RunJournal.read(path)
        assert state.torn_tail
        assert state.records == 4


class TestInteriorCorruption:
    def test_garbage_interior_line_raises(self, tmp_path):
        path = _seed_journal(tmp_path / "run.jsonl")
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b"\x00\xff not json\n"
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalError, match="record 1"):
            RunJournal.read(path)

    def test_sequence_gap_raises(self, tmp_path):
        path = _seed_journal(tmp_path / "run.jsonl")
        lines = path.read_text().splitlines()
        del lines[1]  # a missing interior record is interleaving, not a crash
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="seq"):
            RunJournal.read(path)

    def test_unknown_op_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.open(path) as journal:
            journal.plan(["t3-1"], 0)
            journal.start("spec:aaa", "t3-1")
        lines = path.read_text().splitlines()
        bad = json.loads(lines[0])
        bad["op"] = "commit"
        path.write_text(json.dumps(bad) + "\n" + lines[1] + "\n")
        with pytest.raises(JournalError, match="unknown op"):
            RunJournal.read(path)

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        payload = {"format": "repro/benchmarks", "schema_version": 1, "op": "plan",
                   "seq": 0, "experiment_ids": [], "seed": 0}
        path.write_text(json.dumps(payload) + "\n" + json.dumps(payload) + "\n")
        with pytest.raises(JournalError):
            RunJournal.read(path)


class TestWriteDiscipline:
    def test_plan_must_be_first(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.open(path) as journal:
            journal.start("spec:aaa", "t3-1")
        with RunJournal.open(path) as journal:
            with pytest.raises(JournalError, match="must be the first"):
                journal.plan(["t3-1"], 0)

    def test_every_append_is_on_disk_immediately(self, tmp_path):
        # The durability contract: no close() needed before another reader
        # (or a post-kill resume) sees the record.
        path = tmp_path / "run.jsonl"
        journal = RunJournal.open(path)
        try:
            journal.plan(["t3-1"], 0)
            assert RunJournal.read(path).plan is not None
            journal.start("spec:aaa", "t3-1")
            assert RunJournal.read(path).started
        finally:
            journal.close()

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = RunJournal.open(tmp_path / "run.jsonl")
        journal.close()
        with pytest.raises(JournalError, match="not open"):
            journal.start("spec:aaa", "t3-1")
