"""Telemetry snapshot persistence: stamped JSONL records via repro.io."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.io import (
    append_metrics,
    load_metrics,
    metrics_snapshot_from_dict,
    metrics_snapshot_to_dict,
)
from repro.telemetry import MetricsRegistry, names, to_prometheus


def sample_snapshot() -> dict:
    reg = MetricsRegistry()
    reg.count(names.SERVICE_REQUESTS, 3, status="ok", tier="exact")
    reg.gauge(names.SERVICE_QUEUE_DEPTH, 2)
    reg.observe(names.SERVICE_BATCH_SIZE, 4)
    with reg.spans.open("unit"):
        pass
    return reg.snapshot()


class TestStampedRecord:
    def test_round_trip(self):
        snap = sample_snapshot()
        record = metrics_snapshot_to_dict(snap, meta={"source": "test"})
        assert record["format"] == "repro/metrics"
        assert record["meta"] == {"source": "test"}
        assert metrics_snapshot_from_dict(record) == snap

    def test_wrong_format_rejected(self):
        with pytest.raises(ConfigurationError):
            metrics_snapshot_from_dict({"format": "repro/fits", "metrics": {}})

    def test_missing_metrics_rejected(self):
        with pytest.raises(ConfigurationError):
            metrics_snapshot_from_dict({"format": "repro/metrics",
                                        "schema_version": 1})


class TestJSONLFile:
    def test_append_accumulates_a_time_series(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        first, second = sample_snapshot(), sample_snapshot()
        append_metrics(path, first)
        append_metrics(path, second, meta={"tick": 2})
        loaded = load_metrics(path)
        assert loaded == [first, second]

    def test_records_are_one_line_each(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        append_metrics(path, sample_snapshot())
        append_metrics(path, sample_snapshot())
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)    # each line is standalone JSON

    def test_loaded_snapshot_feeds_the_exporters(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        append_metrics(path, sample_snapshot())
        text = to_prometheus(load_metrics(path)[0])
        assert "service_requests_total{" in text
        assert 'le="+Inf"' in text

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        append_metrics(path, sample_snapshot())
        with path.open("a") as handle:
            handle.write("\n")
        assert len(load_metrics(path)) == 1
