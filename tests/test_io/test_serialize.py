import json

import numpy as np
import pytest

from repro.cesm import ComponentId, CoupledRunSimulator, make_case
from repro.exceptions import ConfigurationError
from repro.fitting import PerfModel
from repro.hslb import BenchmarkData, HSLBPipeline, fit_components, gather_benchmarks
from repro.io import (
    benchmark_data_from_dict,
    benchmark_data_to_dict,
    fits_from_dict,
    fits_to_dict,
    load_benchmarks,
    load_fits,
    run_result_to_dict,
    save_benchmarks,
    save_fits,
)

A, I = ComponentId.ATM, ComponentId.ICE


@pytest.fixture
def sample_data():
    d = BenchmarkData()
    d.add(A, [8, 64, 512], [100.0, 20.0, 5.0])
    d.add(I, [8, 64, 512], [50.0, 10.0, 3.0])
    return d


class TestBenchmarkRoundtrip:
    def test_dict_roundtrip(self, sample_data):
        payload = benchmark_data_to_dict(sample_data, meta={"resolution": "1deg"})
        restored = benchmark_data_from_dict(payload)
        np.testing.assert_array_equal(restored.nodes(A), sample_data.nodes(A))
        np.testing.assert_array_equal(restored.times(I), sample_data.times(I))

    def test_file_roundtrip(self, sample_data, tmp_path):
        path = tmp_path / "bench.json"
        save_benchmarks(path, sample_data)
        restored = load_benchmarks(path)
        assert restored.components() == sample_data.components()

    def test_file_is_plain_json(self, sample_data, tmp_path):
        path = tmp_path / "bench.json"
        save_benchmarks(path, sample_data, meta={"machine": "intrepid"})
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro/benchmarks"
        assert payload["schema_version"] == 1
        assert payload["meta"]["machine"] == "intrepid"

    def test_wrong_format_rejected(self):
        with pytest.raises(ConfigurationError, match="not a repro/benchmarks"):
            benchmark_data_from_dict({"format": "something-else"})

    def test_legacy_format_tag_accepted(self, sample_data):
        payload = benchmark_data_to_dict(sample_data)
        payload["format"] = "repro/benchmarks@1"
        del payload["schema_version"]
        restored = benchmark_data_from_dict(payload)
        assert restored.components() == sample_data.components()

    def test_future_version_rejected_clearly(self, sample_data):
        payload = benchmark_data_to_dict(sample_data)
        payload["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="newer version"):
            benchmark_data_from_dict(payload)

    def test_unknown_component_rejected(self):
        bad = {
            "format": "repro/benchmarks@1",
            "samples": {"volcano": {"nodes": [1], "seconds": [2.0]}},
        }
        with pytest.raises(ConfigurationError, match="unknown component"):
            benchmark_data_from_dict(bad)

    def test_length_mismatch_rejected(self):
        bad = {
            "format": "repro/benchmarks@1",
            "samples": {"atm": {"nodes": [1, 2], "seconds": [2.0]}},
        }
        with pytest.raises(ConfigurationError, match="mismatch"):
            benchmark_data_from_dict(bad)


class TestFitsRoundtrip:
    def test_perfmodel_roundtrip(self, tmp_path):
        fits = {A: PerfModel(a=100.0, b=0.01, c=1.5, d=3.0)}
        path = tmp_path / "fits.json"
        save_fits(path, fits)
        restored = load_fits(path)
        assert restored[A] == fits[A]

    def test_fitresult_diagnostics_recorded(self, sample_data):
        fits = fit_components(sample_data)
        payload = fits_to_dict(fits)
        assert "r_squared" in payload["models"]["atm"]

    def test_wrong_format_rejected(self):
        with pytest.raises(ConfigurationError, match="not a repro/fits"):
            fits_from_dict({"format": "nope"})

    def test_gathered_fits_survive_roundtrip(self, tmp_path):
        sim = CoupledRunSimulator(make_case("1deg", 512, seed=0))
        fits = fit_components(gather_benchmarks(sim))
        path = tmp_path / "fits.json"
        save_fits(path, fits)
        restored = load_fits(path)
        for comp, model in restored.items():
            assert model(64.0) == pytest.approx(fits[comp].model(64.0))


class TestSolveFromSavedFits:
    def test_file_workflow_matches_in_memory(self, tmp_path):
        """gather->save->load->fit->solve equals the in-memory pipeline
        (the paper's 'reuse previous benchmarks' workflow)."""
        from repro.hslb import solve_allocation

        case = make_case("1deg", 128, seed=0)
        pipeline = HSLBPipeline(case)
        data = pipeline.gather()

        path = tmp_path / "bench.json"
        save_benchmarks(path, data)
        fits_mem = pipeline.fit(data)
        fits_file = fit_components(load_benchmarks(path))

        out_mem = solve_allocation(case, fits_mem)
        out_file = solve_allocation(case, fits_file)
        assert out_mem.allocation == out_file.allocation


class TestRunResultExport:
    def test_flattened_run_result(self):
        result = HSLBPipeline(make_case("1deg", 128, seed=0)).run()
        payload = run_result_to_dict(result)
        assert payload["format"] == "repro/run"
        assert payload["schema_version"] == 1
        assert payload["case"]["total_nodes"] == 128
        assert set(payload["allocation"]) == {"atm", "ocn", "ice", "lnd"}
        assert payload["actual_total"] > 0
        json.dumps(payload)  # must be JSON-serializable as-is


class TestEventSerialization:
    def test_clean_run_exports_empty_event_list(self):
        result = HSLBPipeline(make_case("1deg", 128, seed=0)).run()
        payload = run_result_to_dict(result)
        assert payload["events"] == []

    def test_chaos_run_events_round_trip(self):
        from repro.resilience import EventLog, FaultProfile

        result = HSLBPipeline(
            make_case("1deg", 128, seed=0),
            fault_profile=FaultProfile(crash_probability=0.3),
        ).run()
        payload = run_result_to_dict(result)
        assert payload["events"], "a 30% crash rate must leave events"
        json.dumps(payload)  # still JSON-serializable with events attached
        assert EventLog.from_list(payload["events"]) == result.events
