"""KernelCache keying, position independence, and counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExpressionError
from repro.expr.node import const, var
from repro.kernels import BatchKernel, KernelCache, SmoothKernel, default_cache
from repro.util.timing import Counters


def perf_expr(n="n"):
    return const(8000.0) / var(n) + const(0.02) * var(n) ** const(1.3) + const(18.0)


class TestSmoothCaching:
    def test_structurally_equal_trees_hit(self):
        cache = KernelCache()
        cache.smooth(perf_expr(), {"n": 0})
        cache.smooth(perf_expr(), {"n": 0})  # fresh objects, same structure
        assert cache.counters.get("kernel_compiles") == 1
        assert cache.counters.get("kernel_hits") == 1
        assert cache.hit_rate == 0.5

    def test_different_constants_miss(self):
        cache = KernelCache()
        cache.smooth(const(2.0) * var("n"), {"n": 0})
        cache.smooth(const(3.0) * var("n"), {"n": 0})
        assert cache.counters.get("kernel_compiles") == 2

    def test_position_independent_across_layouts(self):
        """The same expression hits even when the variable vector moved —
        the situation B&B children create when presolve fixes different
        variable subsets."""
        cache = KernelCache()
        e = var("T") + const(1.0) / var("n")
        k1 = cache.smooth(e, {"n": 0, "T": 1})
        k2 = cache.smooth(e, {"extra": 0, "n": 1, "T": 4})
        assert cache.counters.get("kernel_compiles") == 1
        assert cache.counters.get("kernel_hits") == 1
        assert k1.core is k2.core
        x1 = np.array([2.0, 7.0])
        x2 = np.array([99.0, 2.0, 0.0, 0.0, 7.0])
        assert k1.value(x1) == k2.value(x2) == 7.5
        g1 = np.zeros(2)
        g2 = np.zeros(5)
        k1.grad_into(x1, g1)
        k2.grad_into(x2, g2)
        assert g1[1] == g2[4] == 1.0          # d/dT
        assert g1[0] == g2[1] == -0.25        # d/dn

    def test_evaluators_cached_separately(self):
        cache = KernelCache()
        cache.smooth(perf_expr(), {"n": 0}, evaluator="kernel")
        cache.smooth(perf_expr(), {"n": 0}, evaluator="tree")
        assert cache.counters.get("kernel_compiles") == 2

    def test_unknown_evaluator_rejected(self):
        with pytest.raises(ExpressionError, match="evaluator"):
            KernelCache().smooth(perf_expr(), {"n": 0}, evaluator="warp")


class TestBatchCaching:
    def test_presimplify_shares_trivial_variants(self):
        cache = KernelCache()
        cache.batch([var("n") + const(0.0)], {"n": 0})
        cache.batch([var("n")], {"n": 0})
        assert cache.counters.get("kernel_compiles") == 1

    def test_batch_counts_points(self):
        cache = KernelCache()
        k = cache.batch([perf_expr()], {"n": 0})
        k.values(np.linspace(1.0, 64.0, 256).reshape(-1, 1))
        assert cache.counters.get("kernel_batch_evals") == 1
        assert cache.counters.get("kernel_batch_points") == 256

    def test_empty_set_rejected(self):
        with pytest.raises(ExpressionError, match="at least one"):
            BatchKernel([], {})


class TestBookkeeping:
    def test_len_and_clear(self):
        cache = KernelCache()
        cache.smooth(perf_expr(), {"n": 0})
        cache.batch([perf_expr()], {"n": 0})
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_summary_snapshot(self):
        cache = KernelCache()
        cache.smooth(perf_expr(), {"n": 0})
        summary = cache.summary()
        assert summary["kernel_compiles"] == 1
        assert summary["kernel_misses"] == 1

    def test_default_cache_is_shared(self):
        assert default_cache() is default_cache()

    def test_hit_rate_zero_before_lookups(self):
        assert KernelCache().hit_rate == 0.0


class TestCounters:
    def test_incr_and_get(self):
        c = Counters()
        c.incr("a")
        c.incr("a", 4)
        assert c.get("a") == 5
        assert c.get("missing") == 0

    def test_ratio(self):
        c = Counters()
        c.incr("hit", 3)
        c.incr("miss", 1)
        assert c.ratio("hit", "hit", "miss") == 0.75
        assert c.ratio("hit", "nothing") == 0.0

    def test_merge_and_summary(self):
        a, b = Counters(), Counters()
        a.incr("x", 2)
        b.incr("x", 3)
        b.incr("y")
        a.merge(b)
        assert a.summary() == {"x": 5, "y": 1}

    def test_smooth_kernel_counts_evaluations(self):
        counters = Counters()
        k = SmoothKernel(perf_expr(), {"n": 0}, counters=counters)
        x = np.array([16.0])
        out = np.zeros(1)
        k.grad_into(x, out)
        H = np.zeros((1, 1))
        k.hess_into(x, H, scale=1.0)
        assert counters.get("kernel_grad_evals") == 1
        assert counters.get("kernel_hess_evals") == 1
