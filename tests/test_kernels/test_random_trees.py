"""Compiled kernels vs tree evaluation on seeded random expression trees.

The kernel layer promises *bit-compatible-or-better* agreement with the
reference tree walk: values, gradients and Hessian entries from the
compiled/CSE'd/batched paths must match ``Expr.evaluate`` and
``repro.expr.diff`` to 1e-12 across randomly generated trees, including the
degenerate one-node trees and trees with heavily shared subtrees (where CSE
actually kicks in).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.expr.diff import gradient, hessian
from repro.expr.node import Neg, Pow, const, var
from repro.kernels import BatchKernel, KernelCache, SmoothKernel
from repro.util.rng import keyed_rng

NAMES = ("x", "y", "z", "w")
INDEX = {n: i for i, n in enumerate(NAMES)}
N_TREES = 200
SEED = 20260806


def random_tree(rng, depth: int):
    """A random expression over NAMES, kept numerically tame.

    Exponents are small positive integer constants so that negative bases
    (reachable through Neg/subtraction) stay in the real domain and the
    second derivatives remain finite.
    """
    if depth <= 0 or rng.random() < 0.25:
        if rng.random() < 0.35:
            return const(round(float(rng.uniform(0.1, 4.0)), 3))
        return var(str(rng.choice(NAMES)))
    op = rng.integers(0, 5)
    left = random_tree(rng, depth - 1)
    if op == 0:
        return left + random_tree(rng, depth - 1)
    if op == 1:
        return left * random_tree(rng, depth - 1)
    if op == 2:
        return left / random_tree(rng, depth - 1)
    if op == 3:
        return Pow(left, const(float(rng.integers(1, 4))))
    return Neg(left)


def tree_cases():
    """(expr, point) pairs: the random sweep plus the mandatory edges."""
    cases = []
    for i in range(N_TREES):
        rng = keyed_rng(SEED, "kernels-tree", str(i))
        expr = random_tree(rng, depth=int(rng.integers(1, 6)))
        point = rng.uniform(0.5, 3.0, size=len(NAMES))
        cases.append((expr, point))
    # one-node trees
    cases.append((var("x"), np.array([1.7, 0.0, 0.0, 0.0])))
    cases.append((const(4.25), np.array([1.0, 1.0, 1.0, 1.0])))
    # a heavily shared subtree (CSE must not change values)
    s = (var("x") * var("y") + const(1.0)) / var("z")
    cases.append((s * s + s + Pow(s, const(3.0)), np.array([1.3, 2.1, 0.7, 1.0])))
    return cases


def env_of(point):
    return dict(zip(NAMES, point.tolist()))


def finite_case(expr, point) -> bool:
    """Skip trees whose reference value/derivatives already blow up."""
    try:
        v = expr.evaluate(env_of(point))
    except (ZeroDivisionError, OverflowError, ValueError):
        return False
    if not math.isfinite(v):
        return False
    support = sorted(expr.variables())
    for g in gradient(expr, support).values():
        if not math.isfinite(g.evaluate(env_of(point))):
            return False
    for h in hessian(expr, support).values():
        if not math.isfinite(h.evaluate(env_of(point))):
            return False
    return True


CASES = [c for c in tree_cases() if finite_case(*c)]


def test_sweep_is_meaningful():
    """The domain filter must not silently gut the sweep."""
    assert len(CASES) >= 150


@pytest.mark.parametrize("case_id", range(len(CASES)))
def test_smooth_kernel_matches_tree_and_diff(case_id):
    expr, point = CASES[case_id]
    kern = SmoothKernel(expr, INDEX)
    env = env_of(point)
    support = sorted(expr.variables())

    assert kern.value(point) == pytest.approx(expr.evaluate(env), abs=1e-12, rel=1e-12)

    grads = gradient(expr, support)
    got = dict(zip(support, kern.grad_entries(point)))
    for name in support:
        assert got[name] == pytest.approx(
            grads[name].evaluate(env), abs=1e-12, rel=1e-12
        ), f"d/d{name} of {expr}"

    hess = hessian(expr, support)
    got_h = dict(zip(kern.hess_positions, kern.hess_entries(point)))
    for (a, b), h_expr in hess.items():
        key = (INDEX[a], INDEX[b])
        assert got_h[key] == pytest.approx(
            h_expr.evaluate(env), abs=1e-12, rel=1e-12
        ), f"d2/d{a}d{b} of {expr}"


def test_batched_values_match_tree_pointwise():
    """One batched call reproduces every per-point tree walk."""
    exprs = [e for e, _ in CASES[:40]]
    rng = keyed_rng(SEED, "kernels-batch")
    X = rng.uniform(0.5, 3.0, size=(16, len(NAMES)))
    kern = BatchKernel(exprs, INDEX)
    got = kern.values(X)
    assert got.shape == (16, len(exprs))
    for i in range(X.shape[0]):
        env = env_of(X[i])
        for j, e in enumerate(exprs):
            ref = e.evaluate(env)
            assert got[i, j] == pytest.approx(ref, abs=1e-12, rel=1e-12)


def test_batched_single_point_shape():
    kern = BatchKernel([var("x") + var("y"), const(2.0)], INDEX)
    out = kern.values(np.array([1.0, 2.0, 0.0, 0.0]))
    assert out.shape == (2,)
    assert out[0] == 3.0 and out[1] == 2.0  # constant broadcast


def test_evaluator_backends_agree_exactly():
    """kernel / scalar / tree back-ends are bit-identical on shared trees."""
    s = (var("x") * var("y") + const(1.0)) / var("z")
    expr = s * s + s
    point = np.array([1.3, 2.1, 0.7, 1.0])
    kernels = {
        ev: KernelCache().smooth(expr, INDEX, evaluator=ev)
        for ev in ("kernel", "scalar", "tree")
    }
    vals = {ev: k.value(point) for ev, k in kernels.items()}
    assert vals["kernel"] == vals["tree"] == vals["scalar"]
    grads = {ev: tuple(k.grad_entries(point)) for ev, k in kernels.items()}
    assert grads["kernel"] == grads["tree"] == grads["scalar"]
    hessians = {ev: tuple(k.hess_entries(point)) for ev, k in kernels.items()}
    assert hessians["kernel"] == hessians["tree"] == hessians["scalar"]
