import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.exceptions import ModelError
from repro.lp import LinearProgram, LPStatus, RowSense, SimplexOptions, solve_lp


def make_lp(c, lb, ub, rows=(), senses=(), rhs=()):
    lp = LinearProgram(np.array(c, float), np.array(lb, float), np.array(ub, float))
    for row, sense, r in zip(rows, senses, rhs):
        lp.add_row(np.array(row, float), sense, r)
    return lp


class TestProblemConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            LinearProgram(np.zeros(2), np.zeros(3), np.zeros(2))

    def test_crossed_bounds_rejected(self):
        with pytest.raises(ModelError):
            LinearProgram(np.zeros(1), np.array([2.0]), np.array([1.0]))

    def test_bad_row_length_rejected(self):
        lp = make_lp([1, 1], [0, 0], [1, 1])
        with pytest.raises(ModelError):
            lp.add_row(np.array([1.0]), RowSense.LE, 1.0)

    def test_nonfinite_row_rejected(self):
        lp = make_lp([1, 1], [0, 0], [1, 1])
        with pytest.raises(ModelError):
            lp.add_row(np.array([np.inf, 0.0]), RowSense.LE, 1.0)

    def test_copy_is_independent(self):
        lp = make_lp([1, 1], [0, 0], [1, 1], [[1, 1]], [RowSense.LE], [1.0])
        cp = lp.copy()
        cp.lb[0] = 0.5
        cp.add_row(np.array([1.0, 0.0]), RowSense.GE, 0.2)
        assert lp.lb[0] == 0.0 and lp.num_rows == 1

    def test_default_names(self):
        lp = make_lp([1, 2], [0, 0], [1, 1])
        assert lp.names == ["x0", "x1"]


class TestBasicSolves:
    def test_bound_only_problem(self):
        lp = make_lp([1.0, -1.0], [0, 0], [2, 3])
        res = solve_lp(lp)
        assert res.is_optimal
        np.testing.assert_allclose(res.x, [0.0, 3.0])
        assert res.objective == pytest.approx(-3.0)

    def test_bound_only_unbounded(self):
        lp = make_lp([-1.0], [0.0], [np.inf])
        res = solve_lp(lp)
        assert res.status is LPStatus.UNBOUNDED

    def test_simple_le(self):
        # max x+y s.t. x+2y<=4, 3x+y<=6  (classic)
        lp = make_lp(
            [-1.0, -1.0], [0, 0], [np.inf, np.inf],
            [[1, 2], [3, 1]], [RowSense.LE, RowSense.LE], [4.0, 6.0],
        )
        res = solve_lp(lp)
        assert res.is_optimal
        assert res.objective == pytest.approx(-(8 / 5 + 6 / 5))

    def test_equality_row(self):
        lp = make_lp(
            [1.0, 2.0], [0, 0], [10, 10],
            [[1, 1]], [RowSense.EQ], [4.0],
        )
        res = solve_lp(lp)
        assert res.is_optimal
        np.testing.assert_allclose(res.x, [4.0, 0.0], atol=1e-8)

    def test_ge_row(self):
        lp = make_lp(
            [1.0, 1.0], [0, 0], [10, 10],
            [[2, 1]], [RowSense.GE], [4.0],
        )
        res = solve_lp(lp)
        assert res.is_optimal
        assert res.objective == pytest.approx(2.0)  # x=2,y=0

    def test_infeasible(self):
        lp = make_lp(
            [0.0], [0.0], [1.0],
            [[1.0]], [RowSense.GE], [2.0],
        )
        res = solve_lp(lp)
        assert res.status is LPStatus.INFEASIBLE

    def test_unbounded_with_rows(self):
        lp = make_lp(
            [-1.0, 0.0], [0, 0], [np.inf, 1.0],
            [[0.0, 1.0]], [RowSense.LE], [1.0],
        )
        res = solve_lp(lp)
        assert res.status is LPStatus.UNBOUNDED

    def test_negative_rhs_rows(self):
        lp = make_lp(
            [1.0, 1.0], [-5, -5], [5, 5],
            [[1, 1]], [RowSense.EQ], [-3.0],
        )
        res = solve_lp(lp)
        assert res.is_optimal
        assert res.objective == pytest.approx(-3.0)

    def test_free_variable(self):
        lp = make_lp(
            [1.0], [-np.inf], [np.inf],
            [[1.0]], [RowSense.GE], [-7.0],
        )
        res = solve_lp(lp)
        assert res.is_optimal
        assert res.objective == pytest.approx(-7.0)

    def test_fixed_variable(self):
        lp = make_lp(
            [1.0, 1.0], [2.0, 0.0], [2.0, 5.0],
            [[1, 1]], [RowSense.GE], [3.0],
        )
        res = solve_lp(lp)
        assert res.is_optimal
        np.testing.assert_allclose(res.x, [2.0, 1.0], atol=1e-8)

    def test_value_map_and_errors(self):
        lp = make_lp([1.0], [0.0], [1.0])
        res = solve_lp(lp)
        assert res.value_map(["a"]) == {"a": 0.0}
        bad = solve_lp(make_lp([0.0], [0.0], [1.0],
                               [[1.0]], [RowSense.GE], [2.0]))
        with pytest.raises(ValueError):
            bad.value_map(["a"])

    def test_duals_reported(self):
        lp = make_lp(
            [-1.0, -1.0], [0, 0], [np.inf, np.inf],
            [[1, 2], [3, 1]], [RowSense.LE, RowSense.LE], [4.0, 6.0],
        )
        res = solve_lp(lp)
        assert res.duals is not None and res.duals.shape == (2,)
        # complementary-ish: both rows tight, duals negative for a min of -x-y
        assert np.all(res.duals <= 1e-9)


class TestDegenerateAndTricky:
    def test_degenerate_vertex(self):
        # Three constraints through the same vertex.
        lp = make_lp(
            [-1.0, -1.0], [0, 0], [np.inf, np.inf],
            [[1, 0], [0, 1], [1, 1]],
            [RowSense.LE] * 3,
            [1.0, 1.0, 2.0],
        )
        res = solve_lp(lp)
        assert res.is_optimal
        assert res.objective == pytest.approx(-2.0)

    def test_bound_flip_path(self):
        # Optimum at an upper bound without any basis change needed.
        lp = make_lp(
            [-1.0, 0.0], [0, 0], [1.0, 1.0],
            [[1.0, 1.0]], [RowSense.LE], [5.0],
        )
        res = solve_lp(lp)
        assert res.is_optimal
        assert res.x[0] == pytest.approx(1.0)

    def test_redundant_equalities(self):
        lp = make_lp(
            [1.0, 1.0], [0, 0], [10, 10],
            [[1, 1], [2, 2]], [RowSense.EQ, RowSense.EQ], [4.0, 8.0],
        )
        res = solve_lp(lp)
        assert res.is_optimal
        assert res.objective == pytest.approx(4.0)

    def test_iteration_limit_status(self):
        lp = make_lp(
            [-1.0, -1.0], [0, 0], [np.inf, np.inf],
            [[1, 2], [3, 1]], [RowSense.LE, RowSense.LE], [4.0, 6.0],
        )
        res = solve_lp(lp, SimplexOptions(max_iterations=0))
        assert res.status is LPStatus.ITERATION_LIMIT


@st.composite
def random_lp(draw):
    n = draw(st.integers(1, 5))
    m = draw(st.integers(1, 4))
    fl = st.floats(-5.0, 5.0, allow_nan=False)
    c = draw(st.lists(fl, min_size=n, max_size=n))
    lb = draw(st.lists(st.floats(-3.0, 0.0), min_size=n, max_size=n))
    span = draw(st.lists(st.floats(0.0, 6.0), min_size=n, max_size=n))
    ub = [l + s for l, s in zip(lb, span)]
    rows = [draw(st.lists(fl, min_size=n, max_size=n)) for _ in range(m)]
    senses = [draw(st.sampled_from(list(RowSense))) for _ in range(m)]
    rhs = draw(st.lists(st.floats(-4.0, 4.0), min_size=m, max_size=m))
    return c, lb, ub, rows, senses, rhs


_SCIPY_SENSE = {RowSense.LE: 1, RowSense.GE: -1}


def scipy_reference(c, lb, ub, rows, senses, rhs):
    A_ub, b_ub, A_eq, b_eq = [], [], [], []
    for row, sense, r in zip(rows, senses, rhs):
        if sense is RowSense.EQ:
            A_eq.append(row)
            b_eq.append(r)
        else:
            sgn = _SCIPY_SENSE[sense]
            A_ub.append([sgn * v for v in row])
            b_ub.append(sgn * r)
    return linprog(
        c,
        A_ub=np.array(A_ub) if A_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(A_eq) if A_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=list(zip(lb, ub)),
        method="highs",
    )


class TestAgainstScipy:
    @given(data=random_lp())
    @settings(max_examples=150, deadline=None)
    def test_matches_scipy_linprog(self, data):
        c, lb, ub, rows, senses, rhs = data
        ours = solve_lp(make_lp(c, lb, ub, rows, senses, rhs))
        ref = scipy_reference(c, lb, ub, rows, senses, rhs)
        if ref.status == 2:  # infeasible
            if ours.is_optimal:
                # Tolerance-boundary case: accept if our point violates the
                # rows by no more than the solver's feasibility tolerance.
                worst = 0.0
                for row, sense, r in zip(rows, senses, rhs):
                    val = float(np.dot(row, ours.x))
                    if sense is RowSense.LE:
                        worst = max(worst, val - r)
                    elif sense is RowSense.GE:
                        worst = max(worst, r - val)
                    else:
                        worst = max(worst, abs(val - r))
                assert worst <= 1e-6
            else:
                assert ours.status is LPStatus.INFEASIBLE
        elif ref.status == 0:
            assert ours.is_optimal, ours.message
            if ours.objective != pytest.approx(ref.fun, rel=1e-6, abs=1e-6):
                # HiGHS enforces primal feasibility only to ~1e-7, so on
                # near-degenerate rows (tiny coefficients) it can report a
                # "better" objective from a point that slightly violates a
                # row.  Accept the mismatch only in that direction, and only
                # when scipy's point is indeed infeasible at exact arithmetic.
                assert ref.fun <= ours.objective + 1e-6
                ref_viol = 0.0
                for row, sense, r in zip(rows, senses, rhs):
                    val = float(np.dot(row, ref.x))
                    if sense is RowSense.LE:
                        ref_viol = max(ref_viol, val - r)
                    elif sense is RowSense.GE:
                        ref_viol = max(ref_viol, r - val)
                    else:
                        ref_viol = max(ref_viol, abs(val - r))
                assert ref_viol > 0.0
            # our solution must actually be feasible
            x = ours.x
            for row, sense, r in zip(rows, senses, rhs):
                val = float(np.dot(row, x))
                if sense is RowSense.LE:
                    assert val <= r + 1e-6
                elif sense is RowSense.GE:
                    assert val >= r - 1e-6
                else:
                    assert val == pytest.approx(r, abs=1e-6)
