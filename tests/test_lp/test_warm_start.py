"""Warm-start / dual-simplex tests.

The branch-and-bound workflow this supports: solve a node LP, tighten one
variable bound (branching) or append rows (outer-approximation cuts), and
re-solve from the previous basis.  Every warm solve is cross-checked against
a cold solve of the same problem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import LinearProgram, LPStatus, RowSense, solve_lp


def base_lp(seed=0, n=6, m=4):
    rng = np.random.default_rng(seed)
    c = rng.uniform(-2.0, 2.0, n)
    lp = LinearProgram(c, np.zeros(n), np.full(n, 10.0))
    for _ in range(m):
        row = rng.uniform(0.0, 1.0, n)
        lp.add_row(row, RowSense.LE, float(row.sum()) * 4.0)
    return lp


class TestWarmStartBasics:
    def test_warm_info_exported(self):
        res = solve_lp(base_lp())
        assert res.is_optimal
        assert res.warm is not None
        assert res.warm.basis.shape == (4,)

    def test_resolve_same_problem_zero_pivots(self):
        lp = base_lp()
        cold = solve_lp(lp)
        warm = solve_lp(lp.copy(), warm=cold.warm)
        assert warm.is_optimal
        assert warm.objective == pytest.approx(cold.objective)
        assert warm.iterations <= 2  # nothing to repair

    def test_bound_tightening_dual_repair(self):
        lp = base_lp()
        cold = solve_lp(lp)
        # branch: force the largest structural variable below its value
        j = int(np.argmax(cold.x))
        child = lp.copy()
        child.ub[j] = max(cold.x[j] / 2.0, 0.5)
        warm = solve_lp(child, warm=cold.warm)
        ref = solve_lp(child)
        assert warm.is_optimal
        assert warm.objective == pytest.approx(ref.objective, rel=1e-8, abs=1e-8)

    def test_appended_cut_row(self):
        lp = base_lp()
        cold = solve_lp(lp)
        child = lp.copy()
        # a cut violated at the current optimum
        row = np.ones(child.num_vars)
        child.add_row(row, RowSense.LE, float(row @ cold.x) - 1.0)
        warm = solve_lp(child, warm=cold.warm)
        ref = solve_lp(child)
        assert warm.is_optimal
        assert warm.objective == pytest.approx(ref.objective, rel=1e-8, abs=1e-8)
        assert warm.dual_iterations >= 1  # the cut actually required repair

    def test_infeasible_after_tightening(self):
        lp = base_lp()
        cold = solve_lp(lp)
        child = lp.copy()
        # an impossible cut: sum of nonnegative vars <= -1
        child.add_row(np.ones(child.num_vars), RowSense.LE, -1.0)
        warm = solve_lp(child, warm=cold.warm)
        assert warm.status is LPStatus.INFEASIBLE

    def test_stale_warm_falls_back(self):
        lp = base_lp()
        cold = solve_lp(lp)
        other = base_lp(seed=99)  # unrelated problem, same shape
        res = solve_lp(other, warm=cold.warm)
        ref = solve_lp(other)
        assert res.is_optimal
        assert res.objective == pytest.approx(ref.objective, rel=1e-8)

    def test_mismatched_shapes_ignored(self):
        lp = base_lp()
        cold = solve_lp(lp)
        small = LinearProgram(np.ones(2), np.zeros(2), np.ones(2))
        small.add_row(np.ones(2), RowSense.LE, 1.0)
        res = solve_lp(small, warm=cold.warm)  # warm silently unusable
        assert res.is_optimal


def mixed_lp(seed=0, n=6):
    """An LP with all three row senses."""
    rng = np.random.default_rng(seed)
    c = rng.uniform(-2.0, 2.0, n)
    lp = LinearProgram(c, np.zeros(n), np.full(n, 10.0))
    row = rng.uniform(0.2, 1.0, n)
    lp.add_row(row, RowSense.LE, float(row.sum()) * 5.0)
    row = rng.uniform(0.2, 1.0, n)
    lp.add_row(row, RowSense.GE, float(row.sum()) * 1.0)
    row = rng.uniform(0.2, 1.0, n)
    lp.add_row(row, RowSense.EQ, float(row.sum()) * 3.0)
    return lp


class TestWarmStartMixedSenses:
    def test_resolve_after_tightening_with_ge_eq_rows(self):
        lp = mixed_lp()
        cold = solve_lp(lp)
        assert cold.is_optimal
        if cold.warm is None:
            pytest.skip("degenerate basis kept an artificial")
        child = lp.copy()
        j = int(np.argmax(cold.x))
        child.ub[j] = max(cold.x[j] * 0.6, 0.1)
        warm = solve_lp(child, warm=cold.warm)
        ref = solve_lp(child)
        assert warm.status == ref.status
        if ref.is_optimal:
            assert warm.objective == pytest.approx(ref.objective, rel=1e-7, abs=1e-7)

    @pytest.mark.parametrize("seed", range(8))
    def test_many_seeds_cut_and_tighten(self, seed):
        lp = mixed_lp(seed=seed)
        cold = solve_lp(lp)
        if not cold.is_optimal or cold.warm is None:
            pytest.skip("cold solve not warm-startable")
        child = lp.copy()
        row = np.ones(child.num_vars)
        child.add_row(row, RowSense.LE, float(row @ cold.x) - 0.5)
        child.lb[seed % child.num_vars] = min(
            child.lb[seed % child.num_vars] + 0.3,
            child.ub[seed % child.num_vars],
        )
        warm = solve_lp(child, warm=cold.warm)
        ref = solve_lp(child)
        assert warm.status == ref.status
        if ref.is_optimal:
            assert warm.objective == pytest.approx(ref.objective, rel=1e-6, abs=1e-6)


@st.composite
def perturbation(draw):
    seed = draw(st.integers(0, 50))
    tighten_var = draw(st.integers(0, 5))
    new_ub = draw(st.floats(0.0, 9.0))
    add_cut = draw(st.booleans())
    cut_margin = draw(st.floats(0.1, 3.0))
    return seed, tighten_var, new_ub, add_cut, cut_margin


class TestWarmEqualsColdProperty:
    @given(p=perturbation())
    @settings(max_examples=60, deadline=None)
    def test_warm_matches_cold(self, p):
        seed, j, new_ub, add_cut, margin = p
        lp = base_lp(seed=seed)
        cold = solve_lp(lp)
        assert cold.is_optimal
        if cold.warm is None:
            return
        child = lp.copy()
        child.ub[j] = new_ub
        if add_cut:
            row = np.ones(child.num_vars)
            child.add_row(row, RowSense.LE, float(row @ cold.x) - margin)
        warm_res = solve_lp(child, warm=cold.warm)
        ref = solve_lp(child)
        assert warm_res.status == ref.status
        if ref.is_optimal:
            assert warm_res.objective == pytest.approx(
                ref.objective, rel=1e-7, abs=1e-7
            )
            # warm solution must satisfy the child's rows
            A, b = child.matrices()
            assert np.all(A @ warm_res.x <= b + 1e-6)
