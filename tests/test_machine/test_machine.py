import pytest

from repro.machine import INTREPID, Machine


class TestMachine:
    def test_intrepid_preset(self):
        assert INTREPID.nodes == 40_960
        assert INTREPID.cores == 163_840
        assert INTREPID.mpi_tasks_per_node == 1
        assert INTREPID.threads_per_task == 4

    def test_cores_for(self):
        assert INTREPID.cores_for(128) == 512

    def test_cores_for_out_of_range(self):
        with pytest.raises(ValueError):
            INTREPID.cores_for(0)
        with pytest.raises(ValueError):
            INTREPID.cores_for(40_961)

    def test_partition(self):
        part = INTREPID.partition(2048)
        assert part.nodes == 2048
        assert part.cores_per_node == 4
        assert "intrepid" in part.name

    def test_partition_too_big(self):
        with pytest.raises(ValueError):
            INTREPID.partition(100_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            Machine("m", nodes=0)
        with pytest.raises(TypeError):
            Machine("m", nodes=1.5)
