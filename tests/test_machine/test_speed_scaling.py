"""New-hardware prediction: machine speed factors end to end."""

import pytest

from repro.cesm import CESMCase, ComponentId, CoupledRunSimulator, Layout, make_case
from repro.fitting import PerfModel
from repro.machine import INTREPID, Machine

A = ComponentId.ATM


class TestMachineSpeed:
    def test_default_speed_is_one(self):
        assert INTREPID.relative_speed == 1.0

    def test_scaled_machine(self):
        fast = INTREPID.scaled(2.0)
        assert fast.relative_speed == 2.0
        assert fast.nodes == INTREPID.nodes
        assert "x2" in fast.name

    def test_scaling_composes(self):
        assert INTREPID.scaled(2.0).scaled(3.0).relative_speed == 6.0

    def test_partition_preserves_speed(self):
        assert INTREPID.scaled(2.0).partition(128).relative_speed == 2.0

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            INTREPID.scaled(0.0)
        with pytest.raises(ValueError):
            Machine("m", nodes=4, relative_speed=-1.0)


class TestSimulatorOnFasterMachine:
    def make_sims(self, speed):
        base = make_case("1deg", 512, seed=3)
        fast_case = CESMCase(
            resolution="1deg",
            total_nodes=512,
            layout=Layout.HYBRID,
            machine=INTREPID.scaled(speed),
            seed=3,
        )
        return CoupledRunSimulator(base), CoupledRunSimulator(fast_case)

    def test_benchmarks_scale_inversely(self):
        slow, fast = self.make_sims(2.0)
        for n in (16, 64, 256):
            assert fast.benchmark(A, n) == pytest.approx(
                slow.benchmark(A, n) / 2.0
            )

    def test_coupled_run_scales(self):
        slow, fast = self.make_sims(4.0)
        alloc = {"lnd": 24, "ice": 80, "atm": 104, "ocn": 24}
        assert fast.run_coupled(alloc).total == pytest.approx(
            slow.run_coupled(alloc).total / 4.0
        )

    def test_hslb_retunes_consistently(self):
        """On a uniformly faster machine HSLB finds the same allocation
        shape (speed cancels out of a min-max ratio problem)."""
        from repro.hslb import HSLBPipeline

        slow, fast = self.make_sims(2.0)
        res_slow = HSLBPipeline(slow.case).run()
        res_fast = HSLBPipeline(fast.case).run()
        assert res_fast.allocation == res_slow.allocation
        assert res_fast.actual_total == pytest.approx(
            res_slow.actual_total / 2.0, rel=1e-6
        )


class TestPerfModelScaled:
    def test_scaled_curve_divides_times(self):
        pm = PerfModel(a=100.0, b=0.1, c=1.3, d=5.0)
        fast = pm.scaled(2.0)
        for n in (1.0, 16.0, 500.0):
            assert fast(n) == pytest.approx(pm(n) / 2.0)

    def test_exponent_preserved(self):
        assert PerfModel(a=10.0, b=1.0, c=1.7).scaled(3.0).c == 1.7

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            PerfModel(a=1.0).scaled(0.0)
