"""Unit tests for MINLP building blocks: relaxation, NLP building, branching."""

import math

import pytest

from repro.expr import var
from repro.lp import LPStatus, solve_lp
from repro.expr.linearize import TangentCut
from repro.expr.linear import LinearForm
from repro.model import Model, Objective, Sense, VarType
from repro.minlp.branching import (
    branch_integer,
    most_fractional_integer,
    split_sos,
    violated_sos_sets,
)
from repro.minlp.node import Node, NodeQueue
from repro.minlp.nlpbuild import build_nlp
from repro.minlp.options import NodeSelection
from repro.minlp.relax import MasterLP, _EmptyBox, bounds_with, integer_env


def layoutish_model():
    """min T s.t. T >= 50/n + 2, n integer in [1, 20], n <= 10."""
    m = Model("toy")
    T = m.add_variable("T", lb=0.0, ub=1000.0)
    n = m.add_variable("n", VarType.INTEGER, 1, 20)
    m.add_constraint("curve", 50.0 / n.ref() + 2.0 - T.ref(), Sense.LE, 0.0)
    m.add_constraint("cap", n.ref(), Sense.LE, 10.0)
    m.set_objective(Objective("obj", T.ref()))
    return m


class TestMasterLP:
    def test_linear_rows_only(self):
        m = layoutish_model()
        master = MasterLP(m, LinearForm({"T": 1.0}, 0.0))
        assert master.base.num_rows == 1  # only "cap"; "curve" is nonlinear

    def test_cut_appends_row(self):
        m = layoutish_model()
        master = MasterLP(m, LinearForm({"T": 1.0}, 0.0))
        added = master.add_cut(TangentCut({"T": -1.0, "n": -0.5}, rhs=-7.0))
        assert added and master.base.num_rows == 2

    def test_duplicate_cut_rejected(self):
        m = layoutish_model()
        master = MasterLP(m, LinearForm({"T": 1.0}, 0.0))
        cut = TangentCut({"T": -1.0}, rhs=-7.0)
        assert master.add_cut(cut)
        assert not master.add_cut(TangentCut({"T": -1.0}, rhs=-7.0))
        assert master.num_cuts == 1

    def test_node_bounds_apply(self):
        m = layoutish_model()
        master = MasterLP(m, LinearForm({"T": 1.0}, 0.0))
        lp = master.lp_for_node({"n": (5.0, 8.0)})
        j = master.index["n"]
        assert (lp.lb[j], lp.ub[j]) == (5.0, 8.0)
        # base unchanged
        assert master.base.lb[j] == 1.0

    def test_empty_box_raises(self):
        m = layoutish_model()
        master = MasterLP(m, LinearForm({"T": 1.0}, 0.0))
        with pytest.raises(_EmptyBox):
            master.lp_for_node({"n": (9.0, 3.0)})

    def test_lp_solvable(self):
        m = layoutish_model()
        master = MasterLP(m, LinearForm({"T": 1.0}, 0.0))
        res = solve_lp(master.lp_for_node({}))
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(0.0)  # no cuts yet: T free at lb


class TestHelpers:
    def test_integer_env_rounds(self):
        m = layoutish_model()
        env = {"T": 4.2, "n": 5.0000001}
        out = integer_env(m, env, 1e-5)
        assert out["n"] == 5.0 and out["T"] == 4.2

    def test_integer_env_fractional_none(self):
        m = layoutish_model()
        assert integer_env(m, {"T": 4.2, "n": 5.4}, 1e-5) is None

    def test_bounds_with_narrows(self):
        b = bounds_with({}, "x", lo=2.0)
        b = bounds_with(b, "x", hi=5.0)
        assert b["x"] == (2.0, 5.0)
        b = bounds_with(b, "x", lo=1.0)  # looser lo ignored
        assert b["x"] == (2.0, 5.0)


class TestNodeQueue:
    def test_best_bound_order(self):
        q = NodeQueue(NodeSelection.BEST_BOUND)
        q.push(Node(bound=5.0))
        q.push(Node(bound=1.0))
        q.push(Node(bound=3.0))
        assert q.pop().bound == 1.0
        assert q.best_open_bound() == 3.0

    def test_depth_first_order(self):
        q = NodeQueue(NodeSelection.DEPTH_FIRST)
        q.push(Node(depth=1))
        q.push(Node(depth=3))
        q.push(Node(depth=2))
        assert q.pop().depth == 3

    def test_empty_bound_inf(self):
        q = NodeQueue(NodeSelection.BEST_BOUND)
        assert q.best_open_bound() == math.inf


class TestBranching:
    def test_most_fractional(self):
        m = Model()
        m.add_variable("a", VarType.INTEGER, 0, 10)
        m.add_variable("b", VarType.INTEGER, 0, 10)
        m.add_variable("x", lb=0, ub=1)
        env = {"a": 3.1, "b": 5.5, "x": 0.7}
        assert most_fractional_integer(m, env, 1e-6) == "b"

    def test_all_integral_none(self):
        m = Model()
        m.add_variable("a", VarType.INTEGER, 0, 10)
        assert most_fractional_integer(m, {"a": 3.0}, 1e-6) is None

    def test_branch_integer_bounds(self):
        left, right = branch_integer("a", 3.4, {})
        assert left["a"][1] == 3.0
        assert right["a"][0] == 4.0

    def test_violated_sos_detection(self):
        m = Model()
        n = m.add_variable("n", VarType.INTEGER, 1, 100)
        m.add_allowed_values(n, [2, 4, 8], prefix="z")
        env = {"n": 3.0, "z_0": 0.5, "z_1": 0.5, "z_2": 0.0}
        viol = violated_sos_sets(m, env, 1e-6)
        assert len(viol) == 1
        clean = {"n": 4.0, "z_0": 0.0, "z_1": 1.0, "z_2": 0.0}
        assert violated_sos_sets(m, clean, 1e-6) == []

    def test_split_sos_partitions_members(self):
        m = Model()
        n = m.add_variable("n", VarType.INTEGER, 1, 100)
        sos = m.add_allowed_values(n, [2, 4, 8, 16], prefix="z")
        env = {"n": 5.0, "z_0": 0.0, "z_1": 0.75, "z_2": 0.0, "z_3": 0.25}
        # centroid = 0.75*4 + 0.25*16 = 7 -> split after weight 4.
        left, right = split_sos(sos, env, {})
        assert left["z_2"] == (0.0, 0.0) and left["z_3"] == (0.0, 0.0)
        assert right["z_0"] == (0.0, 0.0) and right["z_1"] == (0.0, 0.0)
        # target hull bounds tightened on each side
        assert left["n"] == (2.0, 4.0)
        assert right["n"] == (8.0, 16.0)

    def test_split_sos_extreme_centroid_keeps_both_sides(self):
        m = Model()
        n = m.add_variable("n", VarType.INTEGER, 1, 100)
        sos = m.add_allowed_values(n, [2, 4, 8], prefix="z")
        env = {"n": 8.0, "z_0": 0.0, "z_1": 0.0, "z_2": 1.0}
        left, right = split_sos(sos, env, {})
        # even with centroid at the top, the right side keeps a member
        assert any(v == (0.0, 0.0) for v in left.values())
        assert right["n"][0] <= 8.0 <= right["n"][1]


class TestBuildNLP:
    def test_no_fixings_keeps_all_vars(self):
        m = layoutish_model()
        built = build_nlp(m, var("T"), fixings={})
        assert built.problem is not None
        assert set(built.problem.names) == {"T", "n"}

    def test_fixing_integer_removes_it(self):
        m = layoutish_model()
        built = build_nlp(m, var("T"), fixings={"n": 5.0})
        assert built.problem.names == ["T"]
        # curve became 50/5 + 2 - T <= 0 i.e. T >= 12
        assert len(built.problem.inequalities) == 1

    def test_fixing_outside_bounds_infeasible(self):
        m = layoutish_model()
        built = build_nlp(m, var("T"), fixings={"n": 50.0})
        assert built.infeasible_reason is not None

    def test_constant_violation_detected(self):
        m = layoutish_model()
        built = build_nlp(m, var("T"), fixings={"n": 15.0})  # violates cap <= 10
        assert built.infeasible_reason is not None
        assert "cap" in built.infeasible_reason

    def test_singleton_equality_elimination(self):
        m = Model()
        n = m.add_variable("n", VarType.INTEGER, 2, 16)
        T = m.add_variable("T", lb=0.0, ub=100.0)
        m.add_allowed_values(n, [2, 4, 8], prefix="z")
        m.add_constraint("curve", 8.0 / n.ref() - T.ref(), Sense.LE, 0.0)
        m.set_objective(Objective("obj", T.ref()))
        # Fix the binaries: link row pins n = 4, which must be presolved out.
        built = build_nlp(m, T.ref(), fixings={"z_0": 0.0, "z_1": 1.0, "z_2": 0.0})
        assert built.problem is not None
        assert built.problem.names == ["T"]
        assert built.fixed["n"] == pytest.approx(4.0)

    def test_fully_fixed_evaluates_objective(self):
        m = Model()
        n = m.add_variable("n", VarType.INTEGER, 1, 10)
        m.add_constraint("cap", n.ref(), Sense.LE, 8.0)
        m.set_objective(Objective("obj", 2.0 * n.ref()))
        built = build_nlp(m, 2.0 * n.ref(), fixings={"n": 3.0})
        assert built.fully_fixed
        assert built.objective_value == pytest.approx(6.0)

    def test_bounds_overrides_collapse_to_fixing(self):
        m = layoutish_model()
        built = build_nlp(m, var("T"), fixings={}, bounds={"n": (7.0, 7.0)})
        assert built.problem.names == ["T"]
        assert built.fixed["n"] == pytest.approx(7.0)

    def test_ge_row_negated(self):
        m = Model()
        x = m.add_variable("x", lb=0.1, ub=10.0)
        m.add_constraint("floor", x.ref() * x.ref(), Sense.GE, 4.0)
        m.set_objective(Objective("obj", x.ref()))
        built = build_nlp(m, x.ref(), fixings={})
        (name, body), = built.problem.inequalities
        # body <= 0 must mean x^2 >= 4: violated at x=1, satisfied at x=3.
        assert float(body.evaluate({"x": 1.0})) > 0
        assert float(body.evaluate({"x": 3.0})) < 0
