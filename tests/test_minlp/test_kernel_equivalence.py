"""Kernels-on vs tree-walk equivalence of the branch-and-bound solvers.

The compiled-kernel evaluation layer must be *behavior-preserving*: on the
paper's three Table I layout models, both solvers must return bit-identical
optima and explore bit-identical trees (same node counts) whether the NLPs
evaluate through compiled kernels or through the reference ``Expr.evaluate``
tree walks.  Modest node budgets keep every solve deterministic (no solve
may come near the time limit, or node counts would depend on wall-clock).
"""

from __future__ import annotations

import pytest

from repro.cesm import ComponentId, Layout
from repro.fitting import PerfModel
from repro.hslb import build_layout_model
from repro.minlp.bnb import solve_nlp_bnb
from repro.minlp.lpnlp import solve_lpnlp
from repro.minlp.options import MINLPOptions

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

PERF = {
    I: PerfModel(a=8000.0, d=18.0),
    L: PerfModel(a=1465.0, d=2.6),
    A: PerfModel(a=27000.0, d=45.0),
    O: PerfModel(a=7900.0, b=0.02, c=1.0, d=36.0),
}
BOUNDS = {I: (8, 2048), L: (4, 2048), A: (8, 2048), O: (8, 2048)}
N = 64
OCN_ALLOWED = [8, 16, 24, 32]

LAYOUTS = (Layout.HYBRID, Layout.SEQUENTIAL_SPLIT, Layout.FULLY_SEQUENTIAL)


def model_for(layout: Layout):
    return build_layout_model(layout, N, PERF, BOUNDS, ocn_allowed=OCN_ALLOWED)


@pytest.mark.parametrize("layout", LAYOUTS, ids=lambda lay: lay.name.lower())
@pytest.mark.parametrize("solver", (solve_nlp_bnb, solve_lpnlp),
                         ids=("bnb", "lpnlp"))
def test_kernel_and_tree_solves_are_identical(layout, solver):
    model = model_for(layout)
    with_kernels = solver(model, MINLPOptions(evaluator="kernel"))
    with_trees = solver(model, MINLPOptions(evaluator="tree"))

    assert with_kernels.status == with_trees.status
    assert with_kernels.objective == with_trees.objective  # bit-identical
    assert with_kernels.nodes == with_trees.nodes
    assert with_kernels.nlp_solves == with_trees.nlp_solves
    assert with_kernels.solution == with_trees.solution


@pytest.mark.parametrize("layout", LAYOUTS, ids=lambda lay: lay.name.lower())
def test_solvers_agree_on_the_optimum(layout):
    model = model_for(layout)
    bnb = solve_nlp_bnb(model)
    lpnlp = solve_lpnlp(model)
    assert bnb.is_optimal and lpnlp.is_optimal
    assert bnb.objective == pytest.approx(lpnlp.objective, abs=1e-5)


def test_kernel_counters_reported():
    result = solve_nlp_bnb(model_for(Layout.HYBRID))
    counters = result.kernel_counters
    assert counters["kernel_compiles"] >= 1
    assert counters["kernel_hits"] >= 1
    assert counters["kernel_grad_evals"] > 0
    assert counters["kernel_hess_evals"] > 0
    # every miss is one compile: nothing is ever built twice
    assert counters["kernel_misses"] == counters["kernel_compiles"]


def test_scalar_evaluator_also_identical():
    """The per-expression-lambda back-end is the historical path; it must
    stay interchangeable too."""
    model = model_for(Layout.SEQUENTIAL_SPLIT)
    kernel = solve_nlp_bnb(model, MINLPOptions(evaluator="kernel"))
    scalar = solve_nlp_bnb(model, MINLPOptions(evaluator="scalar"))
    assert scalar.objective == kernel.objective
    assert scalar.nodes == kernel.nodes
