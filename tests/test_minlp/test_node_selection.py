"""Node-selection strategies and limit statuses across both solvers."""

import pytest

from repro.model import Model, Objective, ObjSense, Sense, VarType
from repro.minlp import (
    MINLPOptions,
    MINLPStatus,
    NodeSelection,
    solve_lpnlp,
    solve_nlp_bnb,
)


def branching_heavy_model(n_vars=6):
    """A MILP whose LP relaxation is fractional at most nodes."""
    m = Model("heavy")
    xs = [m.add_variable(f"x{j}", VarType.INTEGER, 0, 3) for j in range(n_vars)]
    weights = [3, 5, 7, 11, 13, 17][:n_vars]
    lhs = weights[0] * xs[0].ref()
    for x, w in zip(xs[1:], weights[1:]):
        lhs = lhs + w * x.ref()
    m.add_constraint("cap", lhs, Sense.LE, float(sum(weights)))
    obj = (weights[0] + 0.5) * xs[0].ref()
    for j, x in enumerate(xs[1:], start=1):
        obj = obj + (weights[j] + 0.5) * x.ref()
    m.set_objective(Objective("profit", obj, ObjSense.MAXIMIZE))
    return m


class TestNodeSelection:
    @pytest.mark.parametrize("selection", list(NodeSelection))
    def test_lpnlp_same_optimum_any_selection(self, selection):
        res = solve_lpnlp(
            branching_heavy_model(), MINLPOptions(node_selection=selection)
        )
        assert res.is_optimal
        ref = solve_lpnlp(branching_heavy_model())
        assert res.objective == pytest.approx(ref.objective, abs=1e-6)

    @pytest.mark.parametrize("selection", list(NodeSelection))
    def test_bnb_same_optimum_any_selection(self, selection):
        res = solve_nlp_bnb(
            branching_heavy_model(4), MINLPOptions(node_selection=selection)
        )
        assert res.is_optimal
        ref = solve_nlp_bnb(branching_heavy_model(4))
        assert res.objective == pytest.approx(ref.objective, abs=1e-4)


class TestLimitStatuses:
    def test_bnb_node_limit(self):
        res = solve_nlp_bnb(branching_heavy_model(), MINLPOptions(max_nodes=0))
        assert res.status is MINLPStatus.NODE_LIMIT

    def test_lpnlp_time_limit(self):
        res = solve_lpnlp(
            branching_heavy_model(), MINLPOptions(time_limit=0.0)
        )
        assert res.status is MINLPStatus.TIME_LIMIT

    def test_bnb_time_limit(self):
        res = solve_nlp_bnb(
            branching_heavy_model(4), MINLPOptions(time_limit=0.0)
        )
        assert res.status is MINLPStatus.TIME_LIMIT

    def test_gap_property_with_incumbent(self):
        res = solve_lpnlp(branching_heavy_model())
        assert res.gap <= 1e-5

    def test_gap_without_solution_infinite(self):
        from repro.minlp.result import MINLPResult

        empty = MINLPResult(status=MINLPStatus.NODE_LIMIT)
        assert empty.gap == float("inf")
