"""Canonical (de)serialization of MINLPOptions (satellite of the spec PR).

Options land in TuneSpec payloads and cross process boundaries, so their
dict form must be stable (field order), exact (enums by value, nested
blocks as dicts), and strict (unknown keys rejected, live-object fields
warned about and dropped).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.exceptions import ConfigurationError
from repro.lp.simplex import SimplexOptions
from repro.minlp.options import (
    BranchRule,
    MINLPOptions,
    NON_SERIALIZABLE_FIELDS,
    NodeSelection,
    VarBranchRule,
    minlp_options_from_dict,
    minlp_options_to_dict,
)
from repro.nlp.barrier import BarrierOptions


class TestRoundTrip:
    def test_defaults_round_trip_field_equal(self):
        options = MINLPOptions()
        assert minlp_options_from_dict(minlp_options_to_dict(options)) == options

    def test_non_defaults_round_trip(self):
        options = MINLPOptions(
            rel_gap=1e-4,
            max_nodes=777,
            branch_rule=BranchRule.INTEGER_ONLY,
            var_branch_rule=VarBranchRule.MOST_FRACTIONAL,
            node_selection=NodeSelection.DEPTH_FIRST,
            workers=4,
            evaluator="scalar",
            lp_options=SimplexOptions(max_iterations=123),
            nlp_options=BarrierOptions(tol=1e-9),
        )
        rebuilt = minlp_options_from_dict(minlp_options_to_dict(options))
        assert rebuilt == options

    def test_json_round_trip_is_exact(self):
        options = MINLPOptions(rel_gap=0.1 + 0.2)  # an ugly double on purpose
        payload = json.loads(json.dumps(minlp_options_to_dict(options)))
        assert minlp_options_from_dict(payload) == options

    def test_methods_delegate(self):
        options = MINLPOptions(max_nodes=42)
        assert MINLPOptions.from_dict(options.to_dict()) == options


class TestCanonicalForm:
    def test_field_order_is_declaration_order(self):
        serializable = [
            f.name
            for f in dataclasses.fields(MINLPOptions)
            if f.name not in NON_SERIALIZABLE_FIELDS
        ]
        assert list(minlp_options_to_dict(MINLPOptions())) == serializable

    def test_enums_serialize_by_value(self):
        payload = minlp_options_to_dict(MINLPOptions())
        assert payload["branch_rule"] == "sos_first"
        assert payload["var_branch_rule"] == "pseudo_cost"
        assert payload["node_selection"] == "best_bound"

    def test_nested_blocks_are_plain_dicts(self):
        payload = minlp_options_to_dict(MINLPOptions())
        assert isinstance(payload["lp_options"], dict)
        assert isinstance(payload["nlp_options"], dict)
        json.dumps(payload)  # the whole payload is pure JSON


class TestStrictness:
    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown option keys"):
            minlp_options_from_dict({"rel_gap": 1e-6, "rel_gapp": 1e-6})

    def test_unknown_nested_key_rejected(self):
        payload = minlp_options_to_dict(MINLPOptions())
        payload["lp_options"]["pivot_magic"] = 3
        with pytest.raises(ConfigurationError, match="unknown option keys"):
            minlp_options_from_dict(payload)

    def test_unknown_enum_value_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown value"):
            minlp_options_from_dict({"branch_rule": "coin_flip"})

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ConfigurationError, match="must be a dict"):
            minlp_options_from_dict("rel_gap=1e-6")

    @pytest.mark.parametrize("field", sorted(NON_SERIALIZABLE_FIELDS))
    def test_live_fields_cannot_be_smuggled_in(self, field):
        with pytest.raises(ConfigurationError, match="unknown option keys"):
            minlp_options_from_dict({field: None})


class TestLiveObjectFields:
    def test_set_check_hook_warns_and_drops(self):
        options = MINLPOptions(check_hook=lambda: False)
        with pytest.warns(UserWarning, match="check_hook"):
            payload = minlp_options_to_dict(options)
        assert "check_hook" not in payload
        assert minlp_options_from_dict(payload).check_hook is None

    def test_set_reuse_warns_and_drops(self):
        options = MINLPOptions(reuse=object())
        with pytest.warns(UserWarning, match="reuse"):
            payload = minlp_options_to_dict(options)
        assert "reuse" not in payload
        assert minlp_options_from_dict(payload).reuse is None

    def test_unset_live_fields_serialize_silently(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            minlp_options_to_dict(MINLPOptions())
