"""Tests for the node-NLP presolve: interval propagation, pinch-to-fix,
and the Slater-restoring behaviour the barrier solver depends on."""

import pytest

from repro.expr import var
from repro.minlp.nlpbuild import build_nlp
from repro.model import Model, Objective, Sense, VarType


def capacity_model(N=8, a_lo=2):
    """min T s.t. T >= 100/x, x + y <= N with x in [a_lo, N], y in [1, N]."""
    m = Model("cap")
    T = m.add_variable("T", lb=0.0, ub=1000.0)
    x = m.add_variable("x", VarType.INTEGER, a_lo, N)
    y = m.add_variable("y", VarType.INTEGER, 1, N)
    m.add_constraint("curve", 100.0 / x.ref() - T.ref(), Sense.LE, 0.0)
    m.add_constraint("cap", x.ref() + y.ref(), Sense.LE, float(N))
    m.set_objective(Objective("obj", T.ref()))
    return m


class TestIntervalPropagation:
    def test_basic_tightening(self):
        m = capacity_model(N=8)
        built = build_nlp(m, var("T"), fixings={})
        prob = built.problem
        # x + y <= 8 with y >= 1 implies x <= 7; with x >= 2 implies y <= 6.
        xi = prob.names.index("x")
        yi = prob.names.index("y")
        assert prob.ub[xi] == pytest.approx(7.0)
        assert prob.ub[yi] == pytest.approx(6.0)

    def test_pinched_variable_becomes_fixed(self):
        """y in [6, 8] with x >= 2 and x + y <= 8 pinches y = 6 and x = 2:
        both must be presolved into fixings (no strict interior otherwise)."""
        m = capacity_model(N=8)
        built = build_nlp(m, var("T"), fixings={}, bounds={"y": (6.0, 8.0)})
        assert built.infeasible_reason is None
        assert built.fixed.get("y") == pytest.approx(6.0)
        assert built.fixed.get("x") == pytest.approx(2.0)
        # only T remains, and the curve became a constant bound on it
        assert built.problem is None or built.problem.names == ["T"]

    def test_proven_infeasible_by_propagation(self):
        m = capacity_model(N=8)
        built = build_nlp(m, var("T"), fixings={}, bounds={"y": (7.5, 8.0)})
        # y >= 8 after integer rounding, so x + y <= 8 forces x <= 0 < lb.
        assert built.infeasible_reason is not None

    def test_integer_bounds_rounded(self):
        m = Model("round")
        T = m.add_variable("T", lb=0.0, ub=100.0)
        k = m.add_variable("k", VarType.INTEGER, 1, 10)
        m.add_constraint("half", 2.0 * k.ref(), Sense.LE, 9.0)  # k <= 4.5 -> 4
        m.add_constraint("curve", 10.0 / k.ref() - T.ref(), Sense.LE, 0.0)
        m.set_objective(Objective("obj", T.ref()))
        built = build_nlp(m, T.ref(), fixings={})
        ki = built.problem.names.index("k")
        assert built.problem.ub[ki] == pytest.approx(4.0)

    def test_ge_rows_propagate(self):
        m = Model("ge")
        T = m.add_variable("T", lb=0.0, ub=100.0)
        x = m.add_variable("x", VarType.INTEGER, 1, 10)
        y = m.add_variable("y", VarType.INTEGER, 1, 10)
        m.add_constraint("floor", x.ref() + y.ref(), Sense.GE, 15.0)
        m.add_constraint("curve", 10.0 / x.ref() - T.ref(), Sense.LE, 0.0)
        m.set_objective(Objective("obj", T.ref()))
        built = build_nlp(m, T.ref(), fixings={})
        # x + y >= 15 with y <= 10 implies x >= 5.
        xi = built.problem.names.index("x")
        assert built.problem.lb[xi] == pytest.approx(5.0)

    def test_equality_rows_propagate_both_ways(self):
        m = Model("eq")
        T = m.add_variable("T", lb=0.0, ub=100.0)
        x = m.add_variable("x", VarType.INTEGER, 1, 10)
        y = m.add_variable("y", VarType.INTEGER, 1, 10)
        m.add_constraint("sum", x.ref() + y.ref(), Sense.EQ, 12.0)
        m.add_constraint("curve", 10.0 / x.ref() - T.ref(), Sense.LE, 0.0)
        m.set_objective(Objective("obj", T.ref()))
        built = build_nlp(m, T.ref(), fixings={})
        xi = built.problem.names.index("x")
        assert built.problem.lb[xi] == pytest.approx(2.0)  # y <= 10
        assert built.problem.ub[xi] == pytest.approx(10.0)

    def test_propagation_keeps_feasible_solutions(self):
        """Presolve must be sound: the original optimum survives."""
        from repro.minlp import solve_nlp_bnb

        m = capacity_model(N=8)
        res = solve_nlp_bnb(m)
        assert res.is_optimal
        # best x is 7 (y=1): T = 100/7
        assert res.solution["x"] == 7.0
        assert res.objective == pytest.approx(100.0 / 7.0, rel=1e-3)
