"""Tests for pseudo-cost variable branching."""

import pytest

from repro.model import Model, Objective, Sense, VarType
from repro.minlp import MINLPOptions, VarBranchRule, solve_lpnlp
from repro.minlp.branching import PseudoCostTracker


def make_model_for_tracker():
    m = Model()
    m.add_variable("a", VarType.INTEGER, 0, 10)
    m.add_variable("b", VarType.INTEGER, 0, 10)
    m.add_variable("x", lb=0, ub=1)
    return m


class TestTracker:
    def test_falls_back_to_most_fractional_without_history(self):
        t = PseudoCostTracker()
        m = make_model_for_tracker()
        env = {"a": 3.1, "b": 5.45, "x": 0.7}
        assert t.select(m, env, 1e-6) == "b"

    def test_all_integral_returns_none(self):
        t = PseudoCostTracker()
        m = make_model_for_tracker()
        assert t.select(m, {"a": 3.0, "b": 5.0, "x": 0.2}, 1e-6) is None

    def test_reliability_requires_both_directions(self):
        t = PseudoCostTracker()
        t.update("a", "down", 0.5, 10.0)
        assert not t.is_reliable("a")
        t.update("a", "up", 0.5, 4.0)
        assert t.is_reliable("a")

    def test_prefers_high_degradation_variable(self):
        t = PseudoCostTracker()
        for d in ("down", "up"):
            t.update("a", d, 0.5, 100.0)  # branching on a moves the bound a lot
            t.update("b", d, 0.5, 0.1)
        m = make_model_for_tracker()
        env = {"a": 3.5, "b": 5.5, "x": 0.0}
        assert t.select(m, env, 1e-6) == "a"

    def test_zero_fraction_update_ignored(self):
        t = PseudoCostTracker()
        t.update("a", "down", 0.0, 50.0)
        assert not t.is_reliable("a")

    def test_negative_degradation_clipped(self):
        t = PseudoCostTracker()
        t.update("a", "down", 0.5, -3.0)  # numerically possible on re-solves
        t.update("a", "up", 0.5, 1.0)
        assert t._mean("a", "down") == 0.0


class TestPseudoCostEndToEnd:
    def knapsacky_model(self):
        """A small MILP where branching order matters."""
        m = Model("pc")
        xs = [m.add_variable(f"x{j}", VarType.INTEGER, 0, 4) for j in range(6)]
        weights = [3, 5, 7, 11, 13, 17]
        values = [4, 7, 9, 15, 16, 23]
        cap = sum(w * 2 for w in weights) // 3
        lhs = xs[0].ref() * weights[0]
        for x, w in zip(xs[1:], weights[1:]):
            lhs = lhs + w * x.ref()
        m.add_constraint("cap", lhs, Sense.LE, float(cap))
        obj = xs[0].ref() * values[0]
        for x, v in zip(xs[1:], values[1:]):
            obj = obj + v * x.ref()
        from repro.model import ObjSense

        m.set_objective(Objective("profit", obj, ObjSense.MAXIMIZE))
        return m

    def test_both_rules_reach_same_optimum(self):
        res_mf = solve_lpnlp(
            self.knapsacky_model(),
            MINLPOptions(var_branch_rule=VarBranchRule.MOST_FRACTIONAL),
        )
        res_pc = solve_lpnlp(
            self.knapsacky_model(),
            MINLPOptions(var_branch_rule=VarBranchRule.PSEUDO_COST),
        )
        assert res_mf.is_optimal and res_pc.is_optimal
        assert res_mf.objective == pytest.approx(res_pc.objective, abs=1e-6)

    def test_layout_models_unaffected_by_rule(self):
        from repro.cesm import make_case
        from repro.hslb import HSLBPipeline, solve_allocation

        pipe = HSLBPipeline(make_case("1deg", 128, seed=0))
        fits = pipe.fit(pipe.gather())
        outs = [
            solve_allocation(
                pipe.case, fits,
                options=MINLPOptions(var_branch_rule=rule),
            ).objective_value
            for rule in VarBranchRule
        ]
        assert outs[0] == pytest.approx(outs[1], rel=1e-5)
