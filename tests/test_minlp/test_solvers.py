"""End-to-end MINLP solver tests: both algorithms, brute-force cross-checks."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError, SolverError
from repro.model import Model, Objective, ObjSense, Sense, VarType
from repro.minlp import (
    BranchRule,
    MINLPOptions,
    MINLPStatus,
    solve_lpnlp,
    solve_nlp_bnb,
)


def curve_model(a=60.0, d=2.0, n_max=12, cap=None):
    """min T s.t. T >= a/n + d, n integer in [1, n_max] (optional cap row)."""
    m = Model("curve")
    T = m.add_variable("T", lb=0.0, ub=10_000.0)
    n = m.add_variable("n", VarType.INTEGER, 1, n_max)
    m.add_constraint("perf", a / n.ref() + d - T.ref(), Sense.LE, 0.0)
    if cap is not None:
        m.add_constraint("cap", n.ref(), Sense.LE, float(cap))
    m.set_objective(Objective("obj", T.ref()))
    return m


def two_component_model(N=10, a1=40.0, a2=60.0):
    """min T s.t. T >= a1/n1 + 1, T >= a2/n2 + 1, n1 + n2 <= N (the paper's
    min-max layout shape in miniature)."""
    m = Model("two")
    T = m.add_variable("T", lb=0.0, ub=10_000.0)
    n1 = m.add_variable("n1", VarType.INTEGER, 1, N)
    n2 = m.add_variable("n2", VarType.INTEGER, 1, N)
    m.add_constraint("c1", a1 / n1.ref() + 1.0 - T.ref(), Sense.LE, 0.0)
    m.add_constraint("c2", a2 / n2.ref() + 1.0 - T.ref(), Sense.LE, 0.0)
    m.add_constraint("cap", n1.ref() + n2.ref(), Sense.LE, float(N))
    m.set_objective(Objective("obj", T.ref()))
    return m


def brute_force_two_component(N, a1, a2):
    best = math.inf
    for n1 in range(1, N):
        for n2 in range(1, N - n1 + 1):
            t = max(a1 / n1 + 1.0, a2 / n2 + 1.0)
            best = min(best, t)
    return best


class TestLPNLPBasics:
    def test_single_curve_optimum(self):
        res = solve_lpnlp(curve_model())
        assert res.is_optimal
        assert res.solution["n"] == 12.0
        assert res.objective == pytest.approx(60.0 / 12 + 2.0, abs=1e-5)

    def test_cap_binds(self):
        res = solve_lpnlp(curve_model(cap=5))
        assert res.solution["n"] == 5.0
        assert res.objective == pytest.approx(14.0, abs=1e-5)

    def test_two_component(self):
        res = solve_lpnlp(two_component_model())
        assert res.is_optimal
        expected = brute_force_two_component(10, 40.0, 60.0)
        assert res.objective == pytest.approx(expected, abs=1e-4)
        assert res.solution["n1"] + res.solution["n2"] <= 10

    def test_infeasible_model(self):
        m = curve_model()
        m.add_constraint("impossible", m.variables["n"].ref(), Sense.GE, 50.0)
        res = solve_lpnlp(m)
        assert res.status is MINLPStatus.INFEASIBLE

    def test_missing_objective_raises(self):
        m = Model()
        m.add_variable("x", VarType.INTEGER, 0, 5)
        with pytest.raises(ModelError):
            solve_lpnlp(m)

    def test_nonconvex_rejected_by_default(self):
        m = Model("nc")
        x = m.add_variable("x", lb=0.5, ub=10.0)
        T = m.add_variable("T", lb=0.0, ub=100.0)
        m.add_constraint("bad", x.ref() ** 0.5 - T.ref(), Sense.LE, 0.0)
        m.set_objective(Objective("obj", T.ref()))
        with pytest.raises(SolverError, match="convexity"):
            solve_lpnlp(m)

    def test_gap_is_closed(self):
        res = solve_lpnlp(two_component_model())
        assert res.gap <= 1e-5

    def test_counters_populated(self):
        res = solve_lpnlp(two_component_model())
        assert res.nodes >= 1
        assert res.cuts_added >= 1
        assert res.wall_time >= 0.0

    def test_maximize_sense(self):
        # max -(T) is the same optimum with flipped sign.
        m = two_component_model()
        m.set_objective(Objective("obj", -m.variables["T"].ref(), ObjSense.MAXIMIZE))
        res = solve_lpnlp(m)
        expected = brute_force_two_component(10, 40.0, 60.0)
        assert res.objective == pytest.approx(-expected, abs=1e-4)

    def test_node_limit_status(self):
        res = solve_lpnlp(
            two_component_model(N=30),
            MINLPOptions(max_nodes=0),
        )
        assert res.status is MINLPStatus.NODE_LIMIT

    def test_pure_milp_no_nonlinear(self):
        m = Model("milp")
        a = m.add_variable("a", VarType.INTEGER, 0, 5)
        b = m.add_variable("b", VarType.INTEGER, 0, 5)
        m.add_constraint("cap", 2 * a.ref() + 3 * b.ref(), Sense.LE, 12.0)
        m.set_objective(Objective("obj", -(3 * a.ref() + 4 * b.ref())))
        res = solve_lpnlp(m)
        assert res.is_optimal
        best = min(
            -(3 * x + 4 * y)
            for x in range(6)
            for y in range(6)
            if 2 * x + 3 * y <= 12
        )
        assert res.objective == pytest.approx(best, abs=1e-6)


class TestSOSModels:
    def make_sos_model(self, allowed, a=120.0):
        m = Model("sos")
        T = m.add_variable("T", lb=0.0, ub=10_000.0)
        n = m.add_variable("n", VarType.INTEGER, 1, max(allowed))
        m.add_allowed_values(n, allowed, prefix="z")
        m.add_constraint("perf", a / n.ref() + 1.0 - T.ref(), Sense.LE, 0.0)
        m.set_objective(Objective("obj", T.ref()))
        return m

    def test_allowed_values_respected(self):
        allowed = [2, 4, 6, 12, 24]
        res = solve_lpnlp(self.make_sos_model(allowed))
        assert res.is_optimal
        assert res.solution["n"] in allowed
        assert res.solution["n"] == 24.0

    def test_allowed_values_with_cap(self):
        allowed = [2, 4, 6, 12, 24]
        m = self.make_sos_model(allowed)
        m.add_constraint("cap", m.variables["n"].ref(), Sense.LE, 10.0)
        res = solve_lpnlp(m)
        assert res.solution["n"] == 6.0

    def test_binary_branching_matches_sos(self):
        allowed = [2, 4, 6, 12, 24, 48]
        m1 = self.make_sos_model(allowed)
        m2 = self.make_sos_model(allowed)
        r_sos = solve_lpnlp(m1, MINLPOptions(branch_rule=BranchRule.SOS_FIRST))
        r_bin = solve_lpnlp(m2, MINLPOptions(branch_rule=BranchRule.INTEGER_ONLY))
        assert r_sos.objective == pytest.approx(r_bin.objective, abs=1e-5)
        assert r_sos.solution["n"] == r_bin.solution["n"]

    def test_exactly_one_binary_set(self):
        allowed = [3, 9, 27]
        res = solve_lpnlp(self.make_sos_model(allowed))
        zs = [v for k, v in res.solution.items() if k.startswith("z_")]
        assert sum(zs) == pytest.approx(1.0)
        assert sorted(zs) == [0.0, 0.0, 1.0]


class TestNLPBnB:
    def test_agrees_with_lpnlp_on_curve(self):
        m1, m2 = curve_model(cap=7), curve_model(cap=7)
        r1 = solve_lpnlp(m1)
        r2 = solve_nlp_bnb(m2)
        assert r2.is_optimal
        assert r1.objective == pytest.approx(r2.objective, abs=1e-4)
        assert r1.solution["n"] == r2.solution["n"]

    def test_agrees_on_two_component(self):
        r1 = solve_lpnlp(two_component_model())
        r2 = solve_nlp_bnb(two_component_model())
        assert r1.objective == pytest.approx(r2.objective, abs=1e-3)

    def test_infeasible(self):
        m = curve_model()
        m.add_constraint("impossible", m.variables["n"].ref(), Sense.GE, 50.0)
        res = solve_nlp_bnb(m)
        assert res.status is MINLPStatus.INFEASIBLE

    def test_sos_model(self):
        m = Model("sos")
        T = m.add_variable("T", lb=0.0, ub=10_000.0)
        n = m.add_variable("n", VarType.INTEGER, 1, 24)
        m.add_allowed_values(n, [2, 6, 24], prefix="z")
        m.add_constraint("perf", 120.0 / n.ref() + 1.0 - T.ref(), Sense.LE, 0.0)
        m.set_objective(Objective("obj", T.ref()))
        res = solve_nlp_bnb(m)
        assert res.is_optimal
        assert res.solution["n"] == 24.0


class TestCrossCheckProperty:
    @given(
        a1=st.floats(10.0, 80.0),
        a2=st.floats(10.0, 80.0),
        N=st.integers(4, 14),
    )
    @settings(max_examples=25, deadline=None)
    def test_lpnlp_matches_brute_force(self, a1, a2, N):
        res = solve_lpnlp(two_component_model(N=N, a1=a1, a2=a2))
        assert res.is_optimal
        expected = brute_force_two_component(N, a1, a2)
        assert res.objective == pytest.approx(expected, rel=1e-4)

    @given(
        allowed=st.lists(st.integers(2, 64), min_size=2, max_size=6, unique=True),
        cap=st.integers(3, 64),
    )
    @settings(max_examples=25, deadline=None)
    def test_sos_matches_enumeration(self, allowed, cap):
        allowed = sorted(allowed)
        feasible = [v for v in allowed if v <= cap]
        m = Model("sos")
        T = m.add_variable("T", lb=0.0, ub=10_000.0)
        n = m.add_variable("n", VarType.INTEGER, 1, max(allowed))
        m.add_allowed_values(n, allowed, prefix="z")
        m.add_constraint("perf", 90.0 / n.ref() + 1.0 - T.ref(), Sense.LE, 0.0)
        m.add_constraint("cap", n.ref(), Sense.LE, float(cap))
        m.set_objective(Objective("obj", T.ref()))
        res = solve_lpnlp(m)
        if not feasible:
            assert res.status is MINLPStatus.INFEASIBLE
        else:
            expected = min(90.0 / v + 1.0 for v in feasible)
            assert res.is_optimal
            assert res.objective == pytest.approx(expected, rel=1e-5)
            assert res.solution["n"] in feasible
