import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cesm.decomp import (
    GX1,
    TX0_1,
    DecompStrategy,
    best_strategy,
    default_strategy,
    imbalance_factor,
)
from repro.exceptions import ConfigurationError
from repro.mlice import (
    FEATURE_NAMES,
    IceDecompPolicy,
    KNNRegressor,
    decomposition_features,
    generate_training_set,
    train_selector,
)
from repro.mlice.selector import strategy_for
from repro.mlice.training import sample_task_counts


class TestFeatures:
    def test_shape_and_names(self):
        x = decomposition_features(GX1, 128)
        assert x.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(x))

    def test_divisor_richness_signal(self):
        rich = decomposition_features(GX1, 1024)   # 2^10: many divisors
        poor = decomposition_features(GX1, 1021)   # prime
        i = FEATURE_NAMES.index("divisor_count_norm")
        assert rich[i] > poor[i]

    def test_square_divisor_ratio(self):
        i = FEATURE_NAMES.index("best_sqrt_divisor_ratio")
        perfect = decomposition_features(GX1, 1024)
        prime = decomposition_features(GX1, 1021)
        assert perfect[i] == pytest.approx(1.0, abs=0.5)
        assert prime[i] < 0.1  # only 1 and n divide a prime: 1/sqrt(n)

    def test_invalid_tasks(self):
        with pytest.raises(ValueError):
            decomposition_features(GX1, 0)

    @given(tasks=st.integers(1, 100_000))
    @settings(max_examples=50, deadline=None)
    def test_always_finite(self, tasks):
        assert np.all(np.isfinite(decomposition_features(TX0_1, tasks)))


class TestKNN:
    def make_xy(self, n=60, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.uniform(-1, 1, size=(n, 3))
        y = 2.0 * X[:, 0] - X[:, 1] + 0.1 * rng.normal(size=n)
        return X, y

    def test_fit_predict_shapes(self):
        X, y = self.make_xy()
        model = KNNRegressor(k=5).fit(X, y)
        pred = model.predict(X[:7])
        assert pred.shape == (7,)

    def test_interpolates_training_points(self):
        X, y = self.make_xy()
        model = KNNRegressor(k=1).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-6)

    def test_smooth_function_learned(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, size=(400, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2
        model = KNNRegressor(k=7).fit(X, y)
        Q = rng.uniform(0.1, 0.9, size=(50, 2))
        truth = np.sin(3 * Q[:, 0]) + Q[:, 1] ** 2
        assert np.sqrt(np.mean((model.predict(Q) - truth) ** 2)) < 0.08

    def test_predict_before_fit(self):
        with pytest.raises(ConfigurationError):
            KNNRegressor().predict(np.zeros((1, 2)))

    def test_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            KNNRegressor(k=10).fit(np.zeros((3, 2)), np.zeros(3))

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            KNNRegressor(k=1).fit(np.zeros((3, 2)), np.zeros(4))

    def test_loo_rmse_reasonable(self):
        X, y = self.make_xy(n=200)
        model = KNNRegressor(k=5).fit(X, y)
        assert 0.0 < model.loo_rmse() < 0.5

    def test_constant_feature_handled(self):
        X = np.hstack([np.ones((30, 1)), np.linspace(0, 1, 30)[:, None]])
        y = X[:, 1] * 3.0
        model = KNNRegressor(k=3).fit(X, y)
        assert np.isfinite(model.predict(X[:2])).all()


class TestTraining:
    def test_sample_task_counts(self):
        t = sample_task_counts(8, 4096, 200, seed=0)
        assert t.min() >= 8 and t.max() <= 4096
        assert np.all(np.diff(t) > 0)

    def test_sample_validation(self):
        with pytest.raises(ConfigurationError):
            sample_task_counts(100, 100, 10)

    def test_generate_training_set(self):
        ts = generate_training_set(GX1, n=100, seed=0)
        assert set(ts.labels) == set(DecompStrategy)
        assert ts.features.shape == (ts.n_samples, len(FEATURE_NAMES))
        for y in ts.labels.values():
            assert np.all(y >= 0.9)  # factor >= 1 up to measurement noise

    def test_split_partitions(self):
        ts = generate_training_set(GX1, n=120, seed=0)
        tr, te = ts.split(0.75, seed=1)
        assert tr.n_samples + te.n_samples == ts.n_samples
        assert te.n_samples >= 1

    def test_split_validation(self):
        ts = generate_training_set(GX1, n=50, seed=0)
        with pytest.raises(ConfigurationError):
            ts.split(1.5)


class TestSelector:
    @pytest.fixture(scope="class")
    def selector(self):
        return train_selector(GX1, n=500, seed=0)

    def test_predictions_near_truth(self, selector):
        ts = generate_training_set(GX1, n=60, seed=99)  # fresh queries
        for strat in (DecompStrategy.CARTESIAN, DecompStrategy.ROUNDROBIN):
            preds = [
                selector.predict_costs(int(t))[strat] for t in ts.task_counts
            ]
            truth = [
                imbalance_factor(GX1, int(t), strat) for t in ts.task_counts
            ]
            rmse = np.sqrt(np.mean((np.array(preds) - np.array(truth)) ** 2))
            assert rmse < 0.15

    def test_low_regret(self, selector):
        queries = sample_task_counts(16, 4000, 80, seed=7)
        regrets = [selector.regret(int(t)) for t in queries]
        assert np.mean(regrets) < 0.03

    def test_beats_default_on_awkward_counts(self, selector):
        # Odd / prime-ish counts are where the default heuristic stumbles.
        awkward = [91, 113, 247, 331, 505, 1021, 2003]
        gain = selector.improvement_over_default(awkward)
        assert gain > 0.01

    def test_policy_resolution(self, selector):
        assert strategy_for(GX1, 96, IceDecompPolicy.DEFAULT) is default_strategy(96)
        assert strategy_for(GX1, 96, IceDecompPolicy.ORACLE) is best_strategy(GX1, 96)
        assert strategy_for(GX1, 96, IceDecompPolicy.LEARNED, selector) in DecompStrategy

    def test_learned_needs_selector(self):
        with pytest.raises(ConfigurationError):
            strategy_for(GX1, 96, IceDecompPolicy.LEARNED)

    def test_wrong_grid_rejected(self):
        ts = generate_training_set(GX1, n=60, seed=0)
        with pytest.raises(ConfigurationError):
            train_selector(TX0_1, training=ts)


class TestSimulatorIntegration:
    def test_learned_policy_smooths_ice_curve(self):
        """The headline of ref. [10]: ML-selected decompositions reduce the
        ice curve's noise and make awkward counts faster."""
        from repro.cesm import ComponentId, CoupledRunSimulator, make_case

        case = make_case("1deg", 2048, seed=0)
        selector = train_selector(case.ice_grid, n=500, seed=0)
        sim_default = CoupledRunSimulator(case)
        sim_learned = CoupledRunSimulator(case, ice_strategy_for=selector.select)

        awkward_nodes = [91, 113, 247, 505, 1021]
        t_default = np.array(
            [sim_default.benchmark(ComponentId.ICE, n) for n in awkward_nodes]
        )
        t_learned = np.array(
            [sim_learned.benchmark(ComponentId.ICE, n) for n in awkward_nodes]
        )
        # learned never slower on aggregate, and strictly faster somewhere
        assert t_learned.sum() < t_default.sum()
        assert np.all(t_learned <= t_default * 1.02)
