"""Round-trip tests: Model -> AMPL text -> Model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cesm import ComponentId, make_case
from repro.exceptions import ModelError
from repro.fitting import PerfModel
from repro.model import Model, Objective, ObjSense, Sense, VarType, from_ampl, to_ampl


def assert_models_equivalent(a: Model, b: Model, probe_envs):
    """Same variables/bounds/domains, and every row + objective agrees on
    the probe points (structural equality of trees is too strict — the
    parser may associate differently)."""
    assert set(a.variables) == set(b.variables)
    for name, va in a.variables.items():
        vb = b.variables[name]
        assert va.vtype == vb.vtype, name
        assert va.lb == pytest.approx(vb.lb)
        assert va.ub == pytest.approx(vb.ub)
    assert set(a.constraints) == set(b.constraints)
    for env in probe_envs:
        for name, ca in a.constraints.items():
            cb = b.constraints[name]
            assert ca.sense == cb.sense
            assert float(ca.body.evaluate(env)) == pytest.approx(
                float(cb.body.evaluate(env)), rel=1e-9, abs=1e-9
            ), name
        if a.objective is not None:
            assert a.objective.sense == b.objective.sense
            assert float(a.objective.expr.evaluate(env)) == pytest.approx(
                float(b.objective.expr.evaluate(env)), rel=1e-9, abs=1e-9
            )


class TestRoundTrip:
    def test_simple_model(self):
        m = Model("demo")
        x = m.add_variable("x", VarType.CONTINUOUS, 0.0, 10.0)
        k = m.add_variable("k", VarType.INTEGER, 1, 5)
        z = m.add_variable("z", VarType.BINARY)
        m.add_constraint("cap", x.ref() + 2 * k.ref() - z.ref(), Sense.LE, 8.0)
        m.add_constraint("curve", 10.0 / x.ref() + x.ref() ** 1.5, Sense.GE, 1.0)
        m.set_objective(Objective("obj", x.ref() + k.ref()))
        back = from_ampl(to_ampl(m))
        envs = [{"x": 2.0, "k": 3.0, "z": 1.0}, {"x": 7.5, "k": 1.0, "z": 0.0}]
        assert_models_equivalent(m, back, envs)

    def test_maximize_sense(self):
        m = Model()
        x = m.add_variable("x", lb=0, ub=1)
        m.set_objective(Objective("o", x.ref(), ObjSense.MAXIMIZE))
        back = from_ampl(to_ampl(m))
        assert back.objective.sense is ObjSense.MAXIMIZE

    def test_negative_bounds(self):
        m = Model()
        m.add_variable("x", lb=-5.5, ub=-1.25)
        back = from_ampl(to_ampl(m))
        assert back.variables["x"].lb == -5.5
        assert back.variables["x"].ub == -1.25

    def test_free_variable(self):
        m = Model()
        m.add_variable("free")
        back = from_ampl(to_ampl(m))
        assert math.isinf(back.variables["free"].lb)
        assert math.isinf(back.variables["free"].ub)

    def test_layout_model_roundtrip(self):
        """The real Table I model survives the round trip."""
        from repro.hslb.layout_models import layout_model_for_case

        I, L, A, O = (ComponentId.ICE, ComponentId.LND,
                      ComponentId.ATM, ComponentId.OCN)
        perf = {
            I: PerfModel(a=8000.0, d=18.0),
            L: PerfModel(a=1465.0, d=2.6),
            A: PerfModel(a=27000.0, b=0.001, c=1.2, d=45.0),
            O: PerfModel(a=7900.0, d=36.0),
        }
        case = make_case("1deg", 128)
        m = layout_model_for_case(case, perf)
        back = from_ampl(to_ampl(m))
        env = {name: 0.5 * (v.lb + min(v.ub, v.lb + 10)) for name, v in m.variables.items()}
        assert_models_equivalent(m, back, [env])
        # the parsed model is still certifiably convex and solvable
        assert back.is_certified_convex()
        from repro.minlp import solve_lpnlp

        a = solve_lpnlp(m)
        b = solve_lpnlp(back)
        assert a.objective == pytest.approx(b.objective, rel=1e-6)


class TestParserDirect:
    def test_comments_ignored(self):
        text = """
        # a comment
        var x >= 0, <= 2;   # trailing comment
        minimize obj: x;
        """
        m = from_ampl(text)
        assert "x" in m.variables

    def test_precedence(self):
        text = "var x >= 0, <= 10;\nsubject to c: 2 + 3 * x ^ 2 <= 100;\n"
        m = from_ampl(text)
        body = m.constraints["c"].body
        # 2 + 3*x^2 - 100 at x=2 -> 2 + 12 - 100
        assert body.evaluate({"x": 2.0}) == pytest.approx(-86.0)

    def test_right_associative_power(self):
        text = "var x >= 1, <= 10;\nsubject to c: x ^ 2 ^ 3 <= 1e9;\n"
        m = from_ampl(text)
        # x^(2^3) = x^8
        assert m.constraints["c"].body.evaluate({"x": 2.0}) == pytest.approx(
            2.0**8 - 1e9
        )

    def test_unary_minus(self):
        text = "var x >= -5, <= 5;\nminimize o: -x + -2;\n"
        m = from_ampl(text)
        assert m.objective.expr.evaluate({"x": 3.0}) == pytest.approx(-5.0)

    def test_scientific_notation(self):
        m = from_ampl("var x >= 0, <= 1.5e3;\n")
        assert m.variables["x"].ub == 1500.0

    def test_equality_row(self):
        m = from_ampl("var x >= 0, <= 9;\nsubject to c: 2 * x = 4;\n")
        assert m.constraints["c"].sense is Sense.EQ

    def test_garbage_rejected(self):
        with pytest.raises(ModelError, match="AMPL parse error"):
            from_ampl("var 123bad;")
        with pytest.raises(ModelError):
            from_ampl("subject to c x <= 1;")  # missing colon
        with pytest.raises(ModelError):
            from_ampl("frobnicate x;")

    def test_unbalanced_parens(self):
        with pytest.raises(ModelError):
            from_ampl("var x >= 0, <= 1;\nminimize o: (x + 1;\n")


@st.composite
def random_model(draw):
    m = Model("rand")
    n_vars = draw(st.integers(1, 4))
    names = [f"v{i}" for i in range(n_vars)]
    for name in names:
        lo = draw(st.floats(-10.0, 0.0))
        hi = lo + draw(st.floats(0.5, 20.0))
        vtype = draw(st.sampled_from([VarType.CONTINUOUS, VarType.INTEGER]))
        m.add_variable(name, vtype, round(lo, 3), round(hi, 3))
    for ci in range(draw(st.integers(1, 3))):
        expr = None
        for name in names:
            coef = round(draw(st.floats(-3.0, 3.0)), 3)
            term = coef * m.variables[name].ref()
            expr = term if expr is None else expr + term
        sense = draw(st.sampled_from(list(Sense)))
        rhs = round(draw(st.floats(-5.0, 5.0)), 3)
        m.add_constraint(f"c{ci}", expr, sense, rhs)
    m.set_objective(Objective("obj", m.variables[names[0]].ref()))
    return m


class TestRoundTripProperty:
    @given(model=random_model(), probe=st.floats(-1.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_random_linear_models(self, model, probe):
        back = from_ampl(to_ampl(model))
        env = {
            name: v.lb + (v.ub - v.lb) * (0.5 + 0.4 * probe)
            for name, v in model.variables.items()
        }
        assert_models_equivalent(model, back, [env])
