import math

import pytest

from repro.exceptions import ModelError
from repro.model import (
    Model,
    Objective,
    ObjSense,
    Sense,
    SOS1Set,
    Variable,
    VarType,
    to_ampl,
)


def small_model():
    m = Model("demo")
    x = m.add_variable("x", VarType.CONTINUOUS, 0.0, 10.0)
    k = m.add_variable("k", VarType.INTEGER, 1, 5)
    m.add_constraint("cap", x.ref() + k.ref(), Sense.LE, 8.0)
    m.add_constraint("curve", 10.0 / x.ref() - k.ref(), Sense.LE, 0.0)
    m.set_objective(Objective("obj", x.ref() + k.ref(), ObjSense.MINIMIZE))
    return m


class TestVariable:
    def test_binary_bounds_default(self):
        v = Variable("z", VarType.BINARY)
        assert (v.lb, v.ub) == (0.0, 1.0)

    def test_binary_bad_bounds_rejected(self):
        with pytest.raises(ModelError):
            Variable("z", VarType.BINARY, lb=-1)

    def test_crossed_bounds_rejected(self):
        with pytest.raises(ModelError):
            Variable("x", lb=2, ub=1)

    def test_rounded_feasible_integer(self):
        v = Variable("k", VarType.INTEGER, 1, 5)
        assert v.rounded_feasible(3.4) == 3.0
        assert v.rounded_feasible(0.2) == 1.0
        assert v.rounded_feasible(9.0) == 5.0

    def test_integrality_violation(self):
        v = Variable("k", VarType.INTEGER)
        assert v.integrality_violation(2.5) == pytest.approx(0.5)
        assert v.integrality_violation(3.0) == 0.0
        c = Variable("x")
        assert c.integrality_violation(2.5) == 0.0

    def test_ref_builds_expressions(self):
        v = Variable("n")
        e = 1.0 / v.ref() + 2.0
        assert e.evaluate({"n": 0.5}) == 4.0


class TestModelConstruction:
    def test_duplicate_variable_rejected(self):
        m = Model()
        m.add_variable("x")
        with pytest.raises(ModelError, match="duplicate"):
            m.add_variable("x")

    def test_duplicate_constraint_rejected(self):
        m = Model()
        x = m.add_variable("x")
        m.add_constraint("c", x.ref(), Sense.LE, 1.0)
        with pytest.raises(ModelError, match="duplicate"):
            m.add_constraint("c", x.ref(), Sense.GE, 0.0)

    def test_undeclared_variable_in_constraint_rejected(self):
        m = Model()
        m.add_variable("x")
        from repro.expr import var

        with pytest.raises(ModelError, match="undeclared"):
            m.add_constraint("c", var("ghost"), Sense.LE, 1.0)

    def test_undeclared_variable_in_objective_rejected(self):
        m = Model()
        from repro.expr import var

        with pytest.raises(ModelError, match="undeclared"):
            m.set_objective(Objective("o", var("ghost")))

    def test_stats(self):
        m = small_model()
        s = m.stats()
        assert s["variables"] == 2
        assert s["integer_variables"] == 1
        assert s["constraints"] == 2
        assert s["nonlinear_constraints"] == 1
        assert s["sos1_sets"] == 0


class TestClassification:
    def test_linear_vs_nonlinear_split(self):
        m = small_model()
        assert [c.name for c in m.linear_constraints()] == ["cap"]
        assert [c.name for c in m.nonlinear_constraints()] == ["curve"]

    def test_convexity_certification(self):
        m = small_model()
        assert m.is_certified_convex()

    def test_nonconvex_model_flagged(self):
        m = Model()
        x = m.add_variable("x", lb=0.1, ub=10)
        t = m.add_variable("t", lb=0, ub=100)
        # t >= sqrt(x): body x^0.5 - t <= 0 has a concave term on the LE
        # side, so the row is not certifiably convex -> flagged.
        m.add_constraint("c", x.ref() ** 0.5 - t.ref(), Sense.LE, 0.0)
        assert not m.is_certified_convex()


class TestCheckPoint:
    def test_feasible_point(self):
        m = small_model()
        assert m.check_point({"x": 4.0, "k": 3.0}) == []

    def test_bound_violation_reported(self):
        m = small_model()
        assert "bounds:x" in m.check_point({"x": -1.0, "k": 3.0})

    def test_integrality_violation_reported(self):
        m = small_model()
        assert "integrality:k" in m.check_point({"x": 4.0, "k": 2.5})

    def test_constraint_violation_reported(self):
        m = small_model()
        bad = m.check_point({"x": 7.0, "k": 5.0})
        assert "cap" in bad

    def test_objective_value(self):
        m = small_model()
        assert m.objective_value({"x": 4.0, "k": 3.0}) == 7.0

    def test_objective_missing_raises(self):
        m = Model()
        m.add_variable("x")
        with pytest.raises(ModelError):
            m.objective_value({"x": 0.0})


class TestAllowedValues:
    def test_allowed_values_block(self):
        m = Model()
        n = m.add_variable("n_ocn", VarType.INTEGER, 1, 10_000)
        sos = m.add_allowed_values(n, [480, 512, 2356])
        assert len(sos) == 3
        assert sos.target == "n_ocn"
        # hull bounds tightened
        assert (n.lb, n.ub) == (480.0, 2356.0)
        # choose-one and link rows exist and are linear
        names = set(m.constraints)
        assert any("choose_one" in s for s in names)
        assert any("link" in s for s in names)
        assert all(c.is_linear for c in m.constraints.values())

    def test_allowed_values_dedup_and_sort(self):
        m = Model()
        n = m.add_variable("n", VarType.INTEGER, 1, 100)
        sos = m.add_allowed_values(n, [8, 2, 8, 4])
        assert sos.weights == (2.0, 4.0, 8.0)

    def test_empty_set_rejected(self):
        m = Model()
        n = m.add_variable("n", VarType.INTEGER, 1, 100)
        with pytest.raises(ModelError):
            m.add_allowed_values(n, [])

    def test_arithmetic_progression_encoding(self):
        m = Model()
        n = m.add_variable("n", VarType.INTEGER, 1, 100_000)
        out = m.add_allowed_values(n, range(256, 32769, 2), prefix="z")
        assert out is None
        assert m.sos1_sets == {}
        assert "z_idx" in m.variables
        assert (n.lb, n.ub) == (256.0, 32768.0)
        # the progression row forces even values
        env = {"n": 300.0, "z_idx": 22.0}
        assert m.check_point(env) == []
        env_odd = {"n": 301.0, "z_idx": 22.5}
        assert "integrality:z_idx" in m.check_point(env_odd)

    def test_contiguous_range_tightens_bounds_only(self):
        m = Model()
        n = m.add_variable("n", VarType.INTEGER, 1, 100)
        out = m.add_allowed_values(n, range(5, 20))
        assert out is None
        assert m.constraints == {} and len(m.variables) == 1
        assert (n.lb, n.ub) == (5.0, 19.0)

    def test_sos_encoding_forced(self):
        m = Model()
        n = m.add_variable("n", VarType.INTEGER, 1, 100)
        sos = m.add_allowed_values(n, [2, 4, 6], encode="sos")
        assert sos is not None and len(sos) == 3

    def test_unknown_encoding_rejected(self):
        m = Model()
        n = m.add_variable("n", VarType.INTEGER, 1, 100)
        with pytest.raises(ModelError):
            m.add_allowed_values(n, [2, 4], encode="huh")

    def test_point_checking_with_sos(self):
        m = Model()
        n = m.add_variable("n", VarType.INTEGER, 1, 100)
        m.add_allowed_values(n, [2, 4, 8], prefix="z")
        env = {"n": 4.0, "z_0": 0.0, "z_1": 1.0, "z_2": 0.0}
        assert m.check_point(env) == []
        env_bad = {"n": 5.0, "z_0": 0.0, "z_1": 1.0, "z_2": 0.0}
        assert "z_link" in m.check_point(env_bad)


class TestSOS1Set:
    def test_weights_must_increase(self):
        with pytest.raises(ModelError):
            SOS1Set("s", ("a", "b"), (2.0, 2.0))

    def test_member_weight_length_mismatch(self):
        with pytest.raises(ModelError):
            SOS1Set("s", ("a",), (1.0, 2.0))

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            SOS1Set("s", (), ())

    def test_fractional_weight_and_integrality(self):
        s = SOS1Set("s", ("a", "b", "c"), (1.0, 2.0, 4.0))
        env = {"a": 0.5, "b": 0.5, "c": 0.0}
        assert s.fractional_weight(env) == pytest.approx(1.5)
        assert not s.is_integral(env)
        assert s.active_members(env) == ["a", "b"]
        assert s.is_integral({"a": 0.0, "b": 1.0, "c": 0.0})


class TestAmplExport:
    def test_export_contains_all_pieces(self):
        m = small_model()
        text = to_ampl(m)
        assert "var x >= 0.0, <= 10.0;" in text
        assert "var k integer, >= 1.0, <= 5.0;" in text
        assert "minimize obj:" in text
        assert "subject to cap:" in text
        assert "subject to curve:" in text

    def test_export_power_and_division(self):
        m = Model()
        n = m.add_variable("n", lb=1, ub=100)
        m.add_constraint("t", 10.0 / n.ref() + n.ref() ** 1.5, Sense.LE, 50.0)
        text = to_ampl(m)
        assert "/" in text and "^" in text

    def test_export_sos_comment(self):
        m = Model()
        n = m.add_variable("n", VarType.INTEGER, 1, 100)
        m.add_allowed_values(n, [2, 4, 16], prefix="z")
        assert "SOS1 set z" in to_ampl(m)

    def test_binary_declared_binary(self):
        m = Model()
        m.add_variable("z", VarType.BINARY)
        assert "var z binary" in to_ampl(m)

    def test_infinite_bounds_omitted(self):
        m = Model()
        m.add_variable("free")
        text = to_ampl(m)
        assert "var free;" in text
        assert math.isinf(m.variables["free"].lb)
