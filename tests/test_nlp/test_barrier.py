import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError
from repro.expr import var
from repro.nlp import NLPProblem, NLPStatus, solve_nlp


def qp_1d():
    # min (x-3)^2 s.t. x <= 2  ->  x* = 2
    x = var("x")
    return NLPProblem(
        names=["x"],
        objective=(x - 3.0) * (x - 3.0),
        inequalities=[("cap", x - 2.0)],
        lb=np.array([-10.0]),
        ub=np.array([10.0]),
    )


class TestProblemValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError):
            NLPProblem(["x", "x"], var("x"), [], np.zeros(2), np.ones(2))

    def test_fixed_variable_rejected(self):
        with pytest.raises(ModelError, match="lb < ub"):
            NLPProblem(["x"], var("x"), [], np.array([1.0]), np.array([1.0]))

    def test_unknown_variable_in_constraint(self):
        with pytest.raises(ModelError, match="unknown"):
            NLPProblem(["x"], var("x"), [("c", var("y"))], np.array([0.0]), np.array([1.0]))

    def test_unknown_variable_in_objective(self):
        with pytest.raises(ModelError, match="unknown"):
            NLPProblem(["x"], var("z"), [], np.array([0.0]), np.array([1.0]))

    def test_unknown_variable_in_equality(self):
        with pytest.raises(ModelError, match="unknown"):
            NLPProblem(
                ["x"], var("x"), [], np.array([0.0]), np.array([1.0]),
                eq_rows=[({"ghost": 1.0}, 1.0)],
            )

    def test_max_violation(self):
        p = qp_1d()
        assert p.max_violation(np.array([5.0])) == pytest.approx(3.0)
        assert p.max_violation(np.array([1.0])) == 0.0


class TestUnconstrainedAndBox:
    def test_quadratic_min_inside_box(self):
        x = var("x")
        p = NLPProblem(["x"], (x - 1.5) ** 2, [], np.array([0.0]), np.array([10.0]))
        res = solve_nlp(p)
        assert res.is_optimal
        assert res.x[0] == pytest.approx(1.5, abs=1e-4)

    def test_linear_objective_hits_bound(self):
        x = var("x")
        p = NLPProblem(["x"], x, [], np.array([2.0]), np.array([9.0]))
        res = solve_nlp(p)
        assert res.is_optimal
        assert res.x[0] == pytest.approx(2.0, abs=1e-4)

    def test_two_vars_separable(self):
        x, y = var("x"), var("y")
        p = NLPProblem(
            ["x", "y"], (x - 2) ** 2 + (y + 1) ** 2, [],
            np.array([-5.0, -5.0]), np.array([5.0, 5.0]),
        )
        res = solve_nlp(p)
        assert res.is_optimal
        np.testing.assert_allclose(res.x, [2.0, -1.0], atol=1e-4)


class TestInequalityConstrained:
    def test_active_constraint(self):
        res = solve_nlp(qp_1d())
        assert res.is_optimal
        assert res.x[0] == pytest.approx(2.0, abs=1e-4)
        assert res.objective == pytest.approx(1.0, abs=1e-3)

    def test_inactive_constraint(self):
        x = var("x")
        p = NLPProblem(
            ["x"], (x - 1.0) ** 2, [("cap", x - 100.0)],
            np.array([-10.0]), np.array([1000.0]),
        )
        res = solve_nlp(p)
        assert res.x[0] == pytest.approx(1.0, abs=1e-4)

    def test_perf_model_constraint(self):
        # min T s.t. T >= 100/n + 5, n <= 50: T* = 7 at n = 50.
        T, n = var("T"), var("n")
        p = NLPProblem(
            names=["T", "n"],
            objective=T,
            inequalities=[("curve", 100.0 / n + 5.0 - T)],
            lb=np.array([0.0, 1.0]),
            ub=np.array([1000.0, 50.0]),
        )
        res = solve_nlp(p)
        assert res.is_optimal
        assert res.x[1] == pytest.approx(50.0, abs=1e-2)
        assert res.objective == pytest.approx(7.0, abs=1e-2)

    def test_min_max_epigraph(self):
        # min T s.t. T >= 10/a, T >= 10/b, a + b <= 4 -> a=b=2, T=5.
        T, a, b = var("T"), var("a"), var("b")
        p = NLPProblem(
            names=["T", "a", "b"],
            objective=T,
            inequalities=[
                ("ca", 10.0 / a - T),
                ("cb", 10.0 / b - T),
                ("cap", a + b - 4.0),
            ],
            lb=np.array([0.0, 0.1, 0.1]),
            ub=np.array([1e4, 100.0, 100.0]),
        )
        res = solve_nlp(p)
        assert res.is_optimal
        assert res.objective == pytest.approx(5.0, abs=1e-3)
        assert res.x[1] == pytest.approx(2.0, abs=1e-2)

    def test_infeasible_detected(self):
        x = var("x")
        p = NLPProblem(
            ["x"], x, [("lo", 5.0 - x), ("hi", x - 3.0)],
            np.array([0.0]), np.array([10.0]),
        )
        res = solve_nlp(p)
        assert res.status is NLPStatus.INFEASIBLE

    def test_given_strictly_feasible_start_used(self):
        p = qp_1d()
        res = solve_nlp(p, x0=np.array([0.0]))
        assert res.is_optimal
        assert res.x[0] == pytest.approx(2.0, abs=1e-4)

    def test_infeasible_start_triggers_phase1(self):
        p = qp_1d()
        res = solve_nlp(p, x0=np.array([9.0]))  # violates x <= 2
        assert res.is_optimal
        assert res.x[0] == pytest.approx(2.0, abs=1e-4)


class TestEqualityConstrained:
    def test_projection_objective(self):
        # min (x-3)^2 + (y-3)^2 s.t. x + y = 2 -> x=y=1.
        x, y = var("x"), var("y")
        p = NLPProblem(
            names=["x", "y"],
            objective=(x - 3) ** 2 + (y - 3) ** 2,
            inequalities=[],
            lb=np.array([-10.0, -10.0]),
            ub=np.array([10.0, 10.0]),
            eq_rows=[({"x": 1.0, "y": 1.0}, 2.0)],
        )
        res = solve_nlp(p)
        assert res.is_optimal
        np.testing.assert_allclose(res.x, [1.0, 1.0], atol=1e-4)
        assert res.max_violation <= 1e-6

    def test_equality_with_inequalities(self):
        # min x^2+y^2 s.t. x+y=2, x <= 0.5 -> x=0.5, y=1.5
        x, y = var("x"), var("y")
        p = NLPProblem(
            names=["x", "y"],
            objective=x * x + y * y,
            inequalities=[("cap", x - 0.5)],
            lb=np.array([-10.0, -10.0]),
            ub=np.array([10.0, 10.0]),
            eq_rows=[({"x": 1.0, "y": 1.0}, 2.0)],
        )
        res = solve_nlp(p)
        assert res.is_optimal
        np.testing.assert_allclose(res.x, [0.5, 1.5], atol=1e-3)

    def test_relaxed_binaries_like_sos_hull(self):
        # LP-like: min n s.t. sum z = 1, 2 z0 + 8 z1 = n, z in [0,1].
        n, z0, z1 = var("n"), var("z0"), var("z1")
        p = NLPProblem(
            names=["n", "z0", "z1"],
            objective=n,
            inequalities=[],
            lb=np.array([2.0, 0.0, 0.0]),
            ub=np.array([8.0, 1.0, 1.0]),
            eq_rows=[
                ({"z0": 1.0, "z1": 1.0}, 1.0),
                ({"z0": 2.0, "z1": 8.0, "n": -1.0}, 0.0),
            ],
        )
        res = solve_nlp(p)
        assert res.is_optimal
        assert res.objective == pytest.approx(2.0, abs=1e-3)


class TestKKTProperty:
    @given(
        target=st.floats(-5.0, 5.0),
        cap=st.floats(-4.0, 4.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_parametric_qp_solution(self, target, cap):
        """min (x-target)^2 s.t. x <= cap has solution min(target, cap)."""
        x = var("x")
        p = NLPProblem(
            ["x"], (x - target) * (x - target), [("cap", x - cap)],
            np.array([-100.0]), np.array([100.0]),
        )
        res = solve_nlp(p)
        assert res.is_optimal
        assert res.x[0] == pytest.approx(min(target, cap), abs=1e-3)
