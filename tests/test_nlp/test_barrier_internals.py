"""Regression tests for barrier-solver internals.

Each test here encodes a failure mode that was actually observed while
building the MINLP stack: corner starts after phase 1, ill-conditioned
Hessians faking convergence, and deep-interior cold starts crawling."""

import numpy as np
import pytest

from repro.cesm import ComponentId, ground_truth
from repro.expr import var
from repro.nlp import BarrierOptions, NLPProblem, NLPStatus, solve_nlp
from repro.nlp.barrier import _Barrier

I, L, A, O = ComponentId.ICE, ComponentId.LND, ComponentId.ATM, ComponentId.OCN


def coupled_relaxation():
    """The 1-degree full relaxation that used to crawl for 750+ iterations."""
    T, ni, nl, na, no = (var(s) for s in ("T", "n_i", "n_l", "n_a", "n_o"))
    truth = ground_truth("1deg")
    return NLPProblem(
        names=["T", "n_i", "n_l", "n_a", "n_o"],
        objective=T,
        inequalities=[
            ("ci", truth[I].law.expr("n_i") - T),
            ("cl", truth[L].law.expr("n_l") - T),
            ("ca", truth[A].law.expr("n_a") - T),
            ("co", truth[O].law.expr("n_o") - T),
            ("cap", ni + nl + na + no - 2048.0),
        ],
        lb=np.array([0.0, 4.0, 4.0, 8.0, 8.0]),
        ub=np.array([1e5, 2048.0, 2048.0, 2048.0, 2048.0]),
    )


class TestColdStartRobustness:
    def test_coupled_relaxation_converges(self):
        res = solve_nlp(coupled_relaxation())
        assert res.is_optimal
        # balanced optimum around T ~ 64; anything near it is fine
        assert res.objective < 80.0
        assert res.newton_iterations < 500

    def test_corner_start_recovers(self):
        """Explicit corner start (all n at their floors) — the phase-1 exit
        shape that used to trap the crawl."""
        p = coupled_relaxation()
        x0 = np.array([5e4, 4.5, 4.5, 9.0, 9.0])
        res = solve_nlp(p, x0=x0)
        assert res.is_optimal
        assert res.objective < 80.0

    def test_epigraph_with_dominant_component(self):
        """min T with one enormous component: the barrier must push the big
        component's nodes up instead of stalling against its row (the
        no=4.18 regression)."""
        T, a, b = var("T"), var("a"), var("b")
        p = NLPProblem(
            names=["T", "a", "b"],
            objective=T,
            inequalities=[
                ("ca", 50.0 / a - T),
                ("cb", 4241.0 / b - T),
                ("cap", a + b - 8.0),
            ],
            lb=np.array([0.0, 1.0, 1.0]),
            ub=np.array([1e4, 8.0, 8.0]),
        )
        res = solve_nlp(p)
        assert res.is_optimal
        # optimum pushes b near 7: T ~ 4241/7 = 605.9
        assert res.objective == pytest.approx(4241.0 / 7.0 + 50.0 / 1.0 * 0, rel=0.02)


class TestNewtonDirection:
    def test_descent_on_singular_hessian(self):
        p = coupled_relaxation()
        b = _Barrier(p, BarrierOptions())
        grad = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        H = np.zeros((5, 5))  # fully singular
        dx, dec = b._newton_direction(grad, H)
        assert dec > 0.0
        assert np.all(np.isfinite(dx))

    def test_descent_on_indefinite_hessian(self):
        p = coupled_relaxation()
        b = _Barrier(p, BarrierOptions())
        grad = np.ones(5)
        H = -np.eye(5)  # would send a naive solve uphill
        dx, dec = b._newton_direction(grad, H)
        assert dec > 0.0

    def test_newton_on_clean_hessian(self):
        p = coupled_relaxation()
        b = _Barrier(p, BarrierOptions())
        H = np.diag([1.0, 2.0, 3.0, 4.0, 5.0])
        grad = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        dx, dec = b._newton_direction(grad, H)
        np.testing.assert_allclose(dx, -np.ones(5), rtol=1e-5)


class TestLinAlgErrorRecovery:
    """The two np.linalg.LinAlgError branches must recover, not crash:
    Cholesky failure in _newton_direction (escalating ridge) and a singular
    KKT system in _center (least-squares fallback)."""

    def test_cholesky_failure_escalates_ridge_to_descent(self):
        p = coupled_relaxation()
        b = _Barrier(p, BarrierOptions())
        # Strongly indefinite: cholesky(H + ridge I) raises LinAlgError for
        # every small ridge, forcing several escalation rounds before the
        # factorization succeeds — the except branch, not the happy path.
        H = -1e6 * np.eye(5)
        grad = np.ones(5)
        dx, dec = b._newton_direction(grad, H)
        assert np.all(np.isfinite(dx))
        assert dec > 0.0  # still a genuine descent direction

    def test_mixed_curvature_hessian_recovers(self):
        p = coupled_relaxation()
        b = _Barrier(p, BarrierOptions())
        H = np.diag([1.0, -50.0, 2.0, -3.0, 0.0])
        dx, dec = b._newton_direction(np.array([1.0, -2.0, 0.5, 1.0, -1.0]), H)
        assert np.all(np.isfinite(dx))
        assert dec > 0.0

    def test_singular_kkt_falls_back_to_lstsq(self):
        """Duplicated equality rows make the KKT matrix exactly singular;
        _center must fall back to the least-squares solve and still
        converge to the constrained optimum."""
        x1, x2 = var("x1"), var("x2")
        p = NLPProblem(
            names=["x1", "x2"],
            objective=(x1 - 2.0) ** 2 + (x2 - 3.0) ** 2,
            inequalities=[],
            lb=np.array([0.0, 0.0]),
            ub=np.array([10.0, 10.0]),
            eq_rows=[
                ({"x1": 1.0, "x2": 1.0}, 4.0),
                ({"x1": 1.0, "x2": 1.0}, 4.0),  # exact duplicate -> singular
            ],
        )
        res = solve_nlp(p, x0=np.array([2.0, 2.0]))
        assert res.is_optimal
        # min (x1-2)^2 + (x2-3)^2 s.t. x1+x2=4 -> (1.5, 2.5)
        vals = res.value_map(["x1", "x2"])
        assert vals["x1"] == pytest.approx(1.5, abs=1e-3)
        assert vals["x2"] == pytest.approx(2.5, abs=1e-3)


class TestMaxBoxStep:
    def test_step_to_upper(self):
        p = coupled_relaxation()
        b = _Barrier(p, BarrierOptions())
        x = np.array([10.0, 100.0, 100.0, 100.0, 100.0])
        dx = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        assert b._max_box_step(x, dx) == pytest.approx(1e5 - 10.0)

    def test_step_to_lower(self):
        p = coupled_relaxation()
        b = _Barrier(p, BarrierOptions())
        x = np.array([10.0, 100.0, 100.0, 100.0, 100.0])
        dx = np.array([-1.0, 0.0, 0.0, 0.0, 0.0])
        assert b._max_box_step(x, dx) == pytest.approx(10.0)

    def test_zero_direction_unbounded(self):
        p = coupled_relaxation()
        b = _Barrier(p, BarrierOptions())
        x = np.array([10.0, 100.0, 100.0, 100.0, 100.0])
        assert b._max_box_step(x, np.zeros(5)) == np.inf


class TestHonestStatuses:
    def test_unconverged_never_reports_optimal_garbage(self):
        """With a starved budget the solver must degrade its *status*,
        not fabricate an optimum."""
        res = solve_nlp(
            coupled_relaxation(),
            options=BarrierOptions(max_newton=10, max_newton_per_center=5),
        )
        if res.is_optimal:
            assert res.objective < 80.0  # only acceptable if actually there
        else:
            assert res.status in (NLPStatus.ITERATION_LIMIT, NLPStatus.NUMERICAL_ERROR)

    def test_certified_gap_message_on_stall_finish(self):
        """A solve that finishes by stall must carry a meaningful gap."""
        res = solve_nlp(coupled_relaxation())
        assert res.mu_final == res.mu_final  # not NaN
        assert res.mu_final < 1.0
