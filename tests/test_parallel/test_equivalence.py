"""Differential harness: every backend must be bit-identical to serial.

The contract under test is the one the whole parallel layer is built on
(submit deterministically, merge in submission order): for each backend,
gather -> fit -> solve on the three Table I layouts produces the same
BenchmarkData arrays, the same fitted coefficients, and the same
MINLPResult incumbent and node count as the serial path — including under
fault injection, where the merged event log and the post-gather fault
state must match too.
"""

import numpy as np
import pytest

from repro.cesm import CoupledRunSimulator, make_case
from repro.exceptions import GatherError
from repro.hslb import HSLBPipeline, fit_components, gather_benchmarks, solve_allocation
from repro.minlp import MINLPOptions
from repro.resilience import EventLog, FaultProfile, FaultySimulator, RetryPolicy

BACKENDS = ["thread", "process"]
LAYOUTS = [1, 2, 3]

# Same acceptance profile as the chaos suite: 20% crashes, 5% outliers.
CHAOS = FaultProfile(crash_probability=0.2, outlier_probability=0.05)


def _assert_same_data(ref, got, context=""):
    assert ref.components() == got.components(), context
    for comp in ref.components():
        assert np.array_equal(ref.nodes(comp), got.nodes(comp)), (context, comp)
        assert np.array_equal(ref.times(comp), got.times(comp)), (context, comp)


@pytest.mark.parametrize("backend", BACKENDS)
class TestGatherEquivalence:
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_clean_gather_bit_identical(self, backend, layout):
        case = make_case("1deg", 128, layout=layout)
        sim = CoupledRunSimulator(case)
        ref = gather_benchmarks(sim, points=5)
        got = gather_benchmarks(sim, points=5, executor=backend, workers=4)
        _assert_same_data(ref, got, f"layout {layout} {backend}")

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_faulty_gather_data_events_and_state(self, backend, layout):
        case = make_case("1deg", 128, layout=layout)

        def run(executor, workers):
            sim = FaultySimulator(CoupledRunSimulator(case), CHAOS)
            events = EventLog()
            data = gather_benchmarks(
                sim, points=5, policy=RetryPolicy(), events=events,
                executor=executor, workers=workers,
            )
            return data, events, sim.attempt_counts()

        ref_data, ref_events, ref_attempts = run(None, None)
        got_data, got_events, got_attempts = run(backend, 4)
        _assert_same_data(ref_data, got_data, f"layout {layout} {backend}")
        assert got_events == ref_events
        assert got_attempts == ref_attempts

    def test_gather_error_matches_serial(self, backend):
        """A sweep that cannot save 3 points raises the same GatherError —
        same message, same partial data — from every backend."""
        case = make_case("1deg", 128)
        profile = FaultProfile(crash_probability=0.97)
        policy = RetryPolicy(max_attempts=2)

        def run(executor, workers):
            sim = FaultySimulator(CoupledRunSimulator(case), profile)
            events = EventLog()
            with pytest.raises(GatherError) as err:
                gather_benchmarks(
                    sim, points=5, policy=policy, events=events,
                    executor=executor, workers=workers,
                )
            return err.value, events

        ref_err, ref_events = run(None, None)
        got_err, got_events = run(backend, 4)
        assert str(got_err) == str(ref_err)
        _assert_same_data(ref_err.partial, got_err.partial, backend)
        assert got_events == ref_events


@pytest.mark.parametrize("backend", BACKENDS)
class TestFitEquivalence:
    def test_fit_coefficients_identical(self, backend):
        case = make_case("1deg", 128)
        sim = CoupledRunSimulator(case)
        ref = fit_components(gather_benchmarks(sim, points=5))
        got = fit_components(
            gather_benchmarks(sim, points=5, executor=backend, workers=4)
        )
        for comp in ref:
            assert got[comp].model.as_tuple() == ref[comp].model.as_tuple(), comp
            assert got[comp].r_squared == ref[comp].r_squared, comp


@pytest.mark.parametrize("method", ["lpnlp", "bnb"])
class TestSolveEquivalence:
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_workers_do_not_change_the_search(self, method, layout):
        case = make_case("1deg", 128, layout=layout)
        sim = CoupledRunSimulator(case)
        fits = fit_components(gather_benchmarks(sim, points=5))
        ref = solve_allocation(case, fits, method=method,
                               options=MINLPOptions())
        got = solve_allocation(case, fits, method=method,
                               options=MINLPOptions(workers=4))
        assert got.allocation == ref.allocation
        assert got.predicted_total == ref.predicted_total
        r, g = ref.solver_result, got.solver_result
        assert g.objective == r.objective
        assert g.best_bound == r.best_bound
        assert g.nodes == r.nodes
        assert g.nlp_solves == r.nlp_solves
        assert g.cuts_added == r.cuts_added
        assert g.lp_iterations == r.lp_iterations
        assert g.status == r.status


@pytest.mark.parametrize("backend", BACKENDS)
class TestPipelineEquivalence:
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_full_pipeline_bit_identical(self, backend, layout):
        serial = HSLBPipeline(make_case("1deg", 128, layout=layout)).run()
        parallel = HSLBPipeline(
            make_case("1deg", 128, layout=layout),
            executor=backend, workers=4,
        ).run()
        assert parallel.allocation == serial.allocation
        assert parallel.predicted_total == serial.predicted_total
        assert parallel.actual_total == serial.actual_total
        _assert_same_data(serial.benchmarks, parallel.benchmarks)
        for comp in serial.fits:
            assert (
                parallel.fits[comp].model.as_tuple()
                == serial.fits[comp].model.as_tuple()
            )

    def test_chaos_pipeline_bit_identical(self, backend):
        case = make_case("1deg", 128)
        serial = HSLBPipeline(case, fault_profile=CHAOS).run()
        parallel = HSLBPipeline(
            case, fault_profile=CHAOS, executor=backend, workers=4
        ).run()
        assert parallel.allocation == serial.allocation
        assert parallel.predicted_total == serial.predicted_total
        assert parallel.actual_total == serial.actual_total
        assert parallel.events == serial.events
        _assert_same_data(serial.benchmarks, parallel.benchmarks)
