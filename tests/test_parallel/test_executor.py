"""Unit tests for the executor backends and the ordered-merge rule."""

import time
from dataclasses import dataclass

import pytest

from repro.exceptions import ConfigurationError
from repro.parallel import (
    EXECUTOR_KINDS,
    ProcessExecutor,
    SerialExecutor,
    TaskFailure,
    ThreadExecutor,
    executor_scope,
    get_executor,
    ordered_merge,
)


# Module level so the process pool can pickle them by reference.
@dataclass
class _Payload:
    value: int


def _square(payload: _Payload) -> int:
    return payload.value * payload.value


def _square_slow_evens(payload: _Payload) -> int:
    # Even-indexed tasks finish last: completion order != submission order.
    if payload.value % 2 == 0:
        time.sleep(0.02)
    return payload.value * payload.value


def _fail_on_three(payload: _Payload) -> int:
    if payload.value == 3:
        raise ValueError(f"boom at {payload.value}")
    if payload.value == 7:
        raise RuntimeError("later failure, must not win")
    return payload.value


class TestOrderedMerge:
    def test_returns_submission_order_for_any_permutation(self):
        pairs = [(2, "c"), (0, "a"), (1, "b")]
        assert ordered_merge(pairs, 3) == ["a", "b", "c"]

    def test_raises_smallest_index_failure(self):
        pairs = [
            (1, TaskFailure(ValueError("first"))),
            (0, "fine"),
            (2, TaskFailure(RuntimeError("second"))),
        ]
        with pytest.raises(ValueError, match="first"):
            ordered_merge(pairs, 3)

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ConfigurationError, match="outside"):
            ordered_merge([(3, "x")], 3)

    def test_rejects_duplicate_index(self):
        with pytest.raises(ConfigurationError, match="twice"):
            ordered_merge([(0, "x"), (0, "y")], 2)

    def test_rejects_missing_index(self):
        with pytest.raises(ConfigurationError, match="never completed"):
            ordered_merge([(0, "x")], 2)

    def test_empty(self):
        assert ordered_merge([], 0) == []


class TestSerialExecutor:
    def test_map_ordered_runs_inline_in_order(self):
        ran = []

        def fn(v):
            ran.append(v)
            return v + 1

        ex = SerialExecutor()
        assert ex.map_ordered(fn, [1, 2, 3]) == [2, 3, 4]
        assert ran == [1, 2, 3]

    def test_first_failure_stops_later_tasks(self):
        ran = []

        def fn(v):
            ran.append(v)
            if v == 2:
                raise ValueError("stop")
            return v

        with pytest.raises(ValueError):
            SerialExecutor().map_ordered(fn, [1, 2, 3])
        assert ran == [1, 2], "tasks after the failure must never run"

    def test_submit_is_lazy(self):
        ran = []

        def fn(v):
            ran.append(v)
            return v

        handle = SerialExecutor().submit(fn, 5)
        assert ran == [], "unconsumed speculation must cost nothing"
        assert handle.result() == 5
        assert handle.result() == 5  # cached, not re-run
        assert ran == [5]


@pytest.mark.parametrize("backend", [ThreadExecutor, ProcessExecutor])
class TestPoolExecutors:
    def test_results_in_submission_order(self, backend):
        payloads = [_Payload(v) for v in range(10)]
        with backend(4) as ex:
            assert ex.map_ordered(_square_slow_evens, payloads) == [
                v * v for v in range(10)
            ]

    def test_earliest_submitted_failure_raises(self, backend):
        payloads = [_Payload(v) for v in range(10)]
        with backend(4) as ex:
            with pytest.raises(ValueError, match="boom at 3"):
                ex.map_ordered(_fail_on_three, payloads)

    def test_empty_payloads(self, backend):
        with backend(2) as ex:
            assert ex.map_ordered(_square, []) == []

    def test_kind_label(self, backend):
        assert backend(2).kind in EXECUTOR_KINDS


class TestGetExecutor:
    def test_none_is_serial(self):
        assert get_executor(None).kind == "serial"

    def test_names_resolve(self):
        assert get_executor("serial").kind == "serial"
        assert get_executor("thread", 2).kind == "thread"
        assert get_executor("process", 2).kind == "process"

    def test_instance_passes_through(self):
        ex = ThreadExecutor(2)
        assert get_executor(ex) is ex

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            get_executor("cluster")

    def test_invalid_worker_count_raises(self):
        with pytest.raises(ConfigurationError):
            ThreadExecutor(0)


class TestExecutorScope:
    def test_owns_and_shuts_down_named_executor(self):
        with executor_scope("thread", 2) as ex:
            ex.map_ordered(_square, [_Payload(1)])
            assert ex._pool is not None
        assert ex._pool is None, "scope must shut down executors it created"

    def test_leaves_caller_owned_executor_running(self):
        mine = ThreadExecutor(2)
        with executor_scope(mine) as ex:
            assert ex is mine
            ex.map_ordered(_square, [_Payload(2)])
        assert mine._pool is not None, "caller-owned pool must stay up"
        mine.shutdown()
