"""Property-based tests (hypothesis) for the parallel layer's invariants.

Two properties carry the whole design:

- :func:`ordered_merge` is permutation-invariant — completion order can
  never leak into results;
- the MINLP solvers agree with the exhaustive oracle on random convex
  performance curves, so the solver the parallel layer speculates inside
  is itself trustworthy across the input space, not just on the three
  paper layouts.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.cesm import make_case  # noqa: E402
from repro.fitting import PerfModel  # noqa: E402
from repro.hslb import solve_allocation  # noqa: E402
from repro.parallel import TaskFailure, ordered_merge  # noqa: E402


class TestOrderedMergeProperties:
    @given(
        values=st.lists(st.integers(), max_size=24),
        seed=st.randoms(use_true_random=False),
    )
    def test_any_completion_permutation_restores_submission_order(
        self, values, seed
    ):
        pairs = list(enumerate(values))
        seed.shuffle(pairs)
        assert ordered_merge(pairs, len(values)) == values

    @given(
        n=st.integers(min_value=1, max_value=24),
        fail_at=st.lists(st.integers(min_value=0), min_size=1, max_size=5),
        seed=st.randoms(use_true_random=False),
    )
    def test_earliest_failure_wins_for_any_permutation(self, n, fail_at, seed):
        fail_at = sorted({i % n for i in fail_at})
        pairs = [
            (i, TaskFailure(ValueError(f"task {i}")) if i in fail_at else i)
            for i in range(n)
        ]
        seed.shuffle(pairs)
        with pytest.raises(ValueError, match=f"task {fail_at[0]}"):
            ordered_merge(pairs, n)


# Positive a keeps every curve scalable; c >= 1 keeps b*n^c convex, the
# regime the MINLP layer certifies.  Floats are rounded so failure cases
# print readably.
_CURVES = st.builds(
    PerfModel,
    a=st.floats(min_value=50.0, max_value=5000.0).map(lambda v: round(v, 3)),
    b=st.floats(min_value=0.0, max_value=0.5).map(lambda v: round(v, 4)),
    c=st.floats(min_value=1.0, max_value=2.5).map(lambda v: round(v, 3)),
    d=st.floats(min_value=0.0, max_value=50.0).map(lambda v: round(v, 3)),
)


class TestSolverAgreesWithOracle:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        curves=st.tuples(_CURVES, _CURVES, _CURVES, _CURVES),
        total_nodes=st.sampled_from([64, 96, 128, 160, 192]),
    )
    def test_random_convex_curves_and_budgets(self, curves, total_nodes):
        case = make_case("1deg", total_nodes)
        from repro.cesm.components import OPTIMIZED_COMPONENTS

        perf = dict(zip(OPTIMIZED_COMPONENTS, curves))
        oracle = solve_allocation(case, perf, method="oracle")
        minlp = solve_allocation(case, perf, method="lpnlp")
        scale = max(1.0, abs(oracle.objective_value))
        assert (
            abs(minlp.objective_value - oracle.objective_value) / scale < 1e-5
        ), (
            f"lpnlp {minlp.objective_value} (alloc {minlp.allocation}) vs "
            f"oracle {oracle.objective_value} (alloc {oracle.allocation})"
        )
