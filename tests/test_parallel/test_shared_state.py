"""Regression tests for shared-state hazards the parallel layer depends on.

These pin down the fixes from the concurrency audit: the kernel cache must
be safe (and non-duplicating) under concurrent lookups, retry policies must
not share a sleeper across instances, fault-injection state must survive a
process round-trip, and nothing under ``src/repro`` may draw from the
module-level numpy RNG (order-dependent randomness would break the
submission-order determinism guarantee).
"""

import pathlib
import pickle
import re
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.cesm import CoupledRunSimulator, make_case
from repro.expr.node import VarRef, const
from repro.kernels import KernelCache
from repro.resilience import FaultProfile, FaultySimulator, RetryPolicy
from repro.resilience.events import EventKind, EventLog

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


class TestKernelCacheConcurrency:
    def test_hammered_cache_compiles_each_kernel_once(self):
        cache = KernelCache()
        n = VarRef("n")
        exprs = [const(7.0) / n + const(float(k)) * n for k in range(4)]
        index = {"n": 0}

        def lookup(i):
            return cache.smooth(exprs[i % 4], index)

        with ThreadPoolExecutor(16) as pool:
            kernels = list(pool.map(lookup, range(256)))

        summary = cache.summary()
        assert summary["kernel_compiles"] == 4, summary
        assert summary["kernel_hits"] + summary["kernel_misses"] == 256
        # Every kernel for the same expression shares one compiled core.
        x = np.array([8.0])
        for i, kernel in enumerate(kernels):
            assert kernel.value(x) == kernels[i % 4].value(x)

    def test_cache_pickles_without_its_lock(self):
        # Compiled kernels themselves never pickle (code objects), so what
        # must survive a process hop is an *empty* cache: the lock is
        # dropped on the way out and rebuilt on the way in.
        clone = pickle.loads(pickle.dumps(KernelCache()))
        assert len(clone) == 0
        # The restored cache must still work (fresh lock) on both paths.
        clone.smooth(const(2.0) * VarRef("n"), {"n": 0})
        clone.clear()


class TestRetryPolicySleeper:
    def test_sleep_is_per_instance_not_class_state(self):
        naps = []
        patched = RetryPolicy(base_delay=1.0, jitter=0.0, sleep=naps.append)
        pristine = RetryPolicy()
        patched.pause(0.5)
        assert naps == [0.5]
        assert pristine.sleep is time.sleep, (
            "a patched sleeper must never leak to other policy instances"
        )

    def test_policies_compare_ignoring_sleeper(self):
        assert RetryPolicy(sleep=lambda _: None) == RetryPolicy()


class TestFaultStateMerge:
    def test_merge_attempts_restores_serial_counters(self):
        """The process-gather contract: a worker's copy spends attempts,
        returns the delta, and the parent merge restores serial state."""
        from repro.cesm.components import ComponentId

        case = make_case("1deg", 128)
        profile = FaultProfile(outlier_probability=1.0)
        parent = FaultySimulator(CoupledRunSimulator(case), profile)
        serial = FaultySimulator(CoupledRunSimulator(case), profile)

        worker = pickle.loads(pickle.dumps(parent))
        before = worker.attempt_counts()
        for _ in range(3):
            worker.benchmark(ComponentId.ATM, 64)
            serial.benchmark(ComponentId.ATM, 64)
        after = worker.attempt_counts()
        delta = {
            k: v - before.get(k, 0) for k, v in after.items()
            if v != before.get(k, 0)
        }
        assert parent.attempt_counts() == {}, "parent untouched by the copy"
        parent.merge_attempts(delta)
        assert parent.attempt_counts() == serial.attempt_counts()
        # The merged parent continues the fault stream exactly where the
        # serial simulator would.
        assert parent.benchmark(ComponentId.ATM, 64) == serial.benchmark(
            ComponentId.ATM, 64
        )


class TestEventLogExtend:
    def test_extend_renumbers_to_match_direct_recording(self):
        direct = EventLog()
        left, right = EventLog(), EventLog()
        for log_pair, nodes in (((direct, left), 8), ((direct, right), 16)):
            for log in log_pair:
                log.record(
                    EventKind.RETRY, stage="gather",
                    detail=f"at {nodes} nodes", component="atm", nodes=nodes,
                )
        merged = EventLog()
        merged.extend(left)
        merged.extend(right)
        assert merged == direct
        assert [e.seq for e in merged] == [0, 1]


class TestNoModuleLevelRandomness:
    def test_src_never_uses_the_global_numpy_rng(self):
        """Module-level RNG calls would make results depend on execution
        order across threads; every draw must come from keyed_rng/seeded
        generators.  (np.random.Generator annotations and default_rng are
        fine — np.random.<draw>() calls are not.)"""
        banned = re.compile(
            r"np\.random\.(random|rand|randn|randint|uniform|normal|choice|"
            r"shuffle|permutation|seed)\b"
        )
        offenders = []
        for path in SRC.rglob("*.py"):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if banned.search(line):
                    offenders.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
        assert not offenders, "\n".join(offenders)

    def test_src_has_no_mutable_default_arguments(self):
        """`def f(x=[])` / `def f(x={})` defaults are shared across calls —
        exactly the latent state the audit is meant to keep out."""
        banned = re.compile(r"def \w+\([^)]*=\s*(\[\]|\{\}|set\(\))")
        offenders = []
        for path in SRC.rglob("*.py"):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if banned.search(line):
                    offenders.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
        assert not offenders, "\n".join(offenders)
