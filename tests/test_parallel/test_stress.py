"""Backend stress matrix (``parallel`` marker).

CI's dedicated parallel job runs these across worker counts via
``REPRO_PARALLEL_WORKERS=2,8``; the default suite uses 2 workers only.
Every combination must reproduce the serial pipeline bit-for-bit — worker
count, like backend choice, is not allowed to be observable in results.
"""

import os

import numpy as np
import pytest

from repro.cesm import make_case
from repro.hslb import HSLBPipeline
from repro.resilience import FaultProfile

WORKER_COUNTS = [
    int(w) for w in os.environ.get("REPRO_PARALLEL_WORKERS", "2").split(",")
]

CHAOS = FaultProfile(crash_probability=0.2, outlier_probability=0.05)


def _serial(case_kwargs, pipe_kwargs):
    return HSLBPipeline(make_case(**case_kwargs), **pipe_kwargs).run()


@pytest.mark.parallel
@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("backend", ["thread", "process"])
class TestBackendWorkerMatrix:
    def test_clean_pipeline(self, backend, workers):
        case_kwargs = dict(resolution="1deg", total_nodes=128)
        serial = _serial(case_kwargs, {})
        result = HSLBPipeline(
            make_case(**case_kwargs), executor=backend, workers=workers
        ).run()
        assert result.allocation == serial.allocation
        assert result.predicted_total == serial.predicted_total
        assert result.actual_total == serial.actual_total
        for comp in serial.benchmarks.components():
            assert np.array_equal(
                result.benchmarks.times(comp), serial.benchmarks.times(comp)
            )

    def test_chaos_pipeline(self, backend, workers):
        case_kwargs = dict(resolution="1deg", total_nodes=128)
        serial = _serial(case_kwargs, {"fault_profile": CHAOS})
        result = HSLBPipeline(
            make_case(**case_kwargs), fault_profile=CHAOS,
            executor=backend, workers=workers,
        ).run()
        assert result.allocation == serial.allocation
        assert result.actual_total == serial.actual_total
        assert result.events == serial.events
