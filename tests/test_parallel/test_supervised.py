"""Supervised executor: crash/hang recovery, quarantine, clean-path parity.

Also home to the abnormal-worker-exit semantics of the *plain* process
pool: a SIGKILL'd worker breaks every in-flight future, and the one rule —
the earliest-submitted loss raises — must survive that too.
"""

import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.exceptions import (
    ConfigurationError,
    WorkerCrashError,
    WorkerHangError,
    WorkerLostError,
)
from repro.parallel import (
    EXECUTOR_KINDS,
    PoisonedTask,
    ProcessExecutor,
    SerialExecutor,
    SupervisedProcessExecutor,
    TaskFailure,
    get_executor,
    ordered_merge,
)
from repro.resilience import ChaosProfile, EventLog, RetryPolicy
from repro.resilience.events import EventKind


# Module level so worker processes can pickle them by reference.
@dataclass
class _Payload:
    value: int


def _square(payload: _Payload) -> int:
    return payload.value * payload.value


def _square_slow_evens(payload: _Payload) -> int:
    if payload.value % 2 == 0:
        time.sleep(0.02)
    return payload.value * payload.value


def _fail_on_three(payload: _Payload) -> int:
    if payload.value == 3:
        raise ValueError(f"boom at {payload.value}")
    if payload.value == 7:
        raise RuntimeError("later failure, must not win")
    return payload.value


def _suicide_on_two(payload: _Payload) -> int:
    if payload.value == 2:
        os.kill(os.getpid(), signal.SIGKILL)
    return payload.value * 10


def _sleep_forever(payload: _Payload) -> int:
    time.sleep(60.0)
    return payload.value  # pragma: no cover - always killed first


class TestCleanPathParity:
    def test_results_bit_identical_to_serial(self):
        payloads = [_Payload(v) for v in range(12)]
        reference = SerialExecutor().map_ordered(_square_slow_evens, payloads)
        with SupervisedProcessExecutor(4) as ex:
            assert ex.map_ordered(_square_slow_evens, payloads) == reference
            assert ex.stats["crashes"] == 0
            assert ex.stats["respawns"] == 0
            assert len(ex.events) == 0, "clean path must record nothing"

    def test_pool_survives_across_maps(self):
        with SupervisedProcessExecutor(2) as ex:
            first = ex.map_ordered(_square, [_Payload(v) for v in range(4)])
            pids = [w.proc.pid for w in ex._procs]
            second = ex.map_ordered(_square, [_Payload(v) for v in range(4)])
            assert first == second
            assert [w.proc.pid for w in ex._procs] == pids

    def test_empty_payloads(self):
        with SupervisedProcessExecutor(2) as ex:
            assert ex.map_ordered(_square, []) == []
            assert ex.map_supervised(_square, []) == []

    def test_progress_sees_every_success(self):
        seen = []
        with SupervisedProcessExecutor(3) as ex:
            ex.map_ordered(
                _square,
                [_Payload(v) for v in range(8)],
                progress=lambda i, r: seen.append((i, r)),
            )
        assert sorted(seen) == [(i, i * i) for i in range(8)]

    def test_submit_is_lazy_like_serial(self):
        ran = []

        def fn(v):
            ran.append(v)
            return v

        handle = SupervisedProcessExecutor(2).submit(fn, 9)
        assert ran == []
        assert handle.result() == 9
        assert ran == [9]


class TestTaskExceptions:
    def test_map_ordered_raises_earliest_submitted_failure(self):
        payloads = [_Payload(v) for v in range(10)]
        with SupervisedProcessExecutor(4) as ex:
            with pytest.raises(ValueError, match="boom at 3"):
                ex.map_ordered(_fail_on_three, payloads)

    def test_map_supervised_quarantines_without_retry(self):
        payloads = [_Payload(v) for v in range(6)]
        with SupervisedProcessExecutor(2) as ex:
            got = ex.map_supervised(_fail_on_three, payloads)
        poisoned = got[3]
        assert isinstance(poisoned, PoisonedTask)
        assert poisoned.reason == "error"
        assert poisoned.attempts == 1, "a deterministic failure must not retry"
        assert "boom at 3" in poisoned.detail
        assert got[:3] == [0, 1, 2] and got[4] == 4 and got[5] == 5


class TestCrashRecovery:
    def test_killed_worker_is_respawned_and_task_retried(self):
        # kill_probability=0.4 with fresh draws per attempt: some dispatches
        # die, every task eventually lands, results stay exact.
        events = EventLog()
        with SupervisedProcessExecutor(
            2, chaos=ChaosProfile(kill_probability=0.4), seed=0, events=events
        ) as ex:
            got = ex.map_ordered(_square, [_Payload(v) for v in range(8)])
            assert got == [v * v for v in range(8)]
            assert ex.stats["crashes"] > 0
            assert ex.stats["respawns"] == ex.stats["crashes"]
        assert events.of_kind(EventKind.WORKER_CRASH)
        assert events.of_kind(EventKind.WORKER_RESPAWN)

    def test_exhausted_crash_budget_poisons(self):
        with SupervisedProcessExecutor(
            2,
            chaos=ChaosProfile(kill_probability=1.0),
            retry_policy=RetryPolicy(max_attempts=2),
        ) as ex:
            got = ex.map_supervised(_square, [_Payload(1), _Payload(2)])
        for poisoned in got:
            assert isinstance(poisoned, PoisonedTask)
            assert poisoned.reason == "crash"
            assert poisoned.attempts == 2
        assert ex.stats["poisoned"] == 2
        assert ex.events.of_kind(EventKind.TASK_POISONED)

    def test_exhausted_crash_budget_raises_in_map_ordered(self):
        with SupervisedProcessExecutor(
            2,
            chaos=ChaosProfile(kill_probability=1.0),
            retry_policy=RetryPolicy(max_attempts=1),
        ) as ex:
            with pytest.raises(WorkerCrashError) as info:
                ex.map_ordered(_square, [_Payload(1), _Payload(2)])
        assert info.value.attempts == 1
        assert isinstance(info.value, WorkerLostError)

    def test_real_sigkill_not_just_chaos(self):
        # A task that SIGKILLs its own worker is indistinguishable from an
        # OOM kill; without chaos plumbing the supervisor must still respawn
        # and, after the budget, poison exactly that task.
        with SupervisedProcessExecutor(
            2, retry_policy=RetryPolicy(max_attempts=2)
        ) as ex:
            got = ex.map_supervised(
                _suicide_on_two, [_Payload(v) for v in range(4)]
            )
        assert got[0] == 0 and got[1] == 10 and got[3] == 30
        assert isinstance(got[2], PoisonedTask)
        assert got[2].reason == "crash"


class TestHangRecovery:
    def test_deadline_expiry_kills_and_poisons(self):
        with SupervisedProcessExecutor(
            2, task_deadline=0.3, retry_policy=RetryPolicy(max_attempts=1)
        ) as ex:
            t0 = time.monotonic()
            got = ex.map_supervised(_sleep_forever, [_Payload(1)])
            elapsed = time.monotonic() - t0
        assert isinstance(got[0], PoisonedTask)
        assert got[0].reason == "hang"
        assert elapsed < 10.0, "hung worker must be killed, not awaited"
        assert ex.stats["hangs"] == 1
        assert ex.events.of_kind(EventKind.WORKER_HANG)

    def test_deadline_expiry_raises_hang_error_in_map_ordered(self):
        with SupervisedProcessExecutor(
            1, task_deadline=0.3, retry_policy=RetryPolicy(max_attempts=1)
        ) as ex:
            with pytest.raises(WorkerHangError):
                ex.map_ordered(_sleep_forever, [_Payload(1)])

    def test_chaos_hang_ticket_recovers(self):
        # Chaos hangs one dispatch far past the deadline; the retry's fresh
        # draw survives and the result is exact.
        with SupervisedProcessExecutor(
            2,
            task_deadline=0.5,
            chaos=ChaosProfile(kill_probability=0.0, hang_probability=0.2,
                               hang_seconds=30.0),
            seed=1,
            retry_policy=RetryPolicy(max_attempts=4),
        ) as ex:
            got = ex.map_ordered(_square, [_Payload(v) for v in range(6)])
        assert got == [v * v for v in range(6)]
        assert ex.stats["hangs"] == 1, "seed 1 at p=0.2 hangs exactly one dispatch"


class TestConstruction:
    def test_registered_backend(self):
        assert "supervised" in EXECUTOR_KINDS
        ex = get_executor("supervised", 2)
        assert isinstance(ex, SupervisedProcessExecutor)
        assert ex.kind == "supervised"
        ex.shutdown()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisedProcessExecutor(0)
        with pytest.raises(ConfigurationError):
            SupervisedProcessExecutor(2, heartbeat_interval=0.0)
        with pytest.raises(ConfigurationError):
            SupervisedProcessExecutor(2, heartbeat_misses=0)
        with pytest.raises(ConfigurationError):
            SupervisedProcessExecutor(2, task_deadline=-1.0)

    def test_poisoned_task_round_trip(self):
        poisoned = PoisonedTask(3, 4, "crash", "worker died")
        assert poisoned.to_dict() == {
            "index": 3, "attempts": 4, "reason": "crash", "detail": "worker died",
        }
        assert "task 3" in poisoned.describe()
        assert "4 attempts" in poisoned.describe()


class TestAbnormalPoolExit:
    """Plain ProcessExecutor semantics when a worker dies mid-batch."""

    def test_broken_pool_raises_worker_crash_for_earliest_task(self):
        # The SIGKILL breaks every in-flight future (BrokenProcessPool),
        # but what surfaces must still be a typed WorkerCrashError for the
        # earliest-submitted lost task — not whichever future the wait
        # happened to see first, and never a raw pool exception.
        payloads = [_Payload(v) for v in range(8)]
        with ProcessExecutor(2) as ex:
            with pytest.raises(WorkerCrashError):
                ex.map_ordered(_suicide_on_two, payloads)

    def test_pool_is_rebuilt_after_abnormal_exit(self):
        with ProcessExecutor(2) as ex:
            with pytest.raises(WorkerCrashError):
                ex.map_ordered(_suicide_on_two, [_Payload(2)])
            # The broken pool was dropped; the next map starts fresh.
            assert ex.map_ordered(_square, [_Payload(3)]) == [9]

    def test_ordered_merge_earliest_crash_wins(self):
        pairs = [
            (2, TaskFailure(WorkerCrashError("lost task 2"))),
            (0, "fine"),
            (1, TaskFailure(WorkerCrashError("lost task 1"))),
        ]
        with pytest.raises(WorkerCrashError, match="lost task 1"):
            ordered_merge(pairs, 3)

    def test_poisoned_task_is_a_value_not_a_failure(self):
        # PoisonedTask flows through the merge as a result: graceful
        # degradation depends on the merge not raising for it.
        pairs = [(0, "ok"), (1, PoisonedTask(1, 4, "crash", "gone"))]
        merged = ordered_merge(pairs, 2)
        assert merged[0] == "ok"
        assert isinstance(merged[1], PoisonedTask)
