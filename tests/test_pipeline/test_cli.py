import socket
import threading
import time

import pytest

from repro.pipeline.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tune_args(self):
        args = build_parser().parse_args(
            ["tune", "--resolution", "1deg", "--nodes", "128", "--seed", "3"]
        )
        assert args.resolution == "1deg" and args.nodes == 128 and args.seed == 3
        assert args.method == "lpnlp"

    def test_bad_resolution_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune", "--resolution", "2deg", "--nodes", "8"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "t3-1" in out and "fig4" in out

    def test_tune_smoke(self, capsys):
        code = main(["tune", "--resolution", "1deg", "--nodes", "128"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Total time, sec" in out
        assert "fit R^2" in out
        assert "solver:" in out

    def test_tune_oracle_method(self, capsys):
        code = main(
            ["tune", "--resolution", "1deg", "--nodes", "128", "--method", "oracle"]
        )
        assert code == 0
        assert "Total time, sec" in capsys.readouterr().out

    def test_ampl_export(self, capsys):
        code = main(["ampl", "--resolution", "1deg", "--nodes", "128"])
        assert code == 0
        out = capsys.readouterr().out
        assert "minimize total_time" in out
        assert "subject to" in out

    def test_exp_unknown_id_errors(self, capsys):
        code = main(["exp", "definitely-not-an-experiment"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_exp_runs_ablation(self, capsys):
        assert main(["exp", "a-solve"]) == 0
        assert "A-SOLVE" in capsys.readouterr().out

    def test_gather_fit_solve_file_workflow(self, capsys, tmp_path):
        bench = str(tmp_path / "bench.json")
        fits = str(tmp_path / "fits.json")
        assert main(["gather", "--resolution", "1deg", "--nodes", "128",
                     "--out", bench]) == 0
        assert main(["fit", "--benchmarks", bench, "--out", fits]) == 0
        assert main(["solve", "--fits", fits, "--resolution", "1deg",
                     "--nodes", "128"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "predicted total:" in out
        assert "n_atm" in out

    def test_fit_bad_file_errors(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "nope"}')
        assert main(["fit", "--benchmarks", str(bad), "--out",
                     str(tmp_path / "out.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_exp_without_id_errors(self, capsys):
        assert main(["exp"]) == 1
        assert "experiment id or --all" in capsys.readouterr().err

    def test_decomp_advice(self, capsys):
        assert main(["decomp", "91", "1021"]) == 0
        out = capsys.readouterr().out
        assert "decomposition advice" in out
        assert "91" in out and "recommended" in out

    def test_tune_infeasible_configuration_errors(self, capsys):
        # 8th degree at 300 nodes: no allowed ocean count fits.
        code = main(["tune", "--resolution", "8th", "--nodes", "300"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestResilienceFlags:
    def test_tune_accepts_resilience_flags(self):
        args = build_parser().parse_args(
            ["tune", "--resolution", "1deg", "--nodes", "128",
             "--fault-profile", "crash=0.2", "--max-retries", "3",
             "--deadline", "30"]
        )
        assert args.fault_profile == "crash=0.2"
        assert args.max_retries == 3
        assert args.deadline == 30.0

    def test_tune_with_faults_prints_event_summary(self, capsys):
        code = main(["tune", "--resolution", "1deg", "--nodes", "128",
                     "--fault-profile", "crash=0.3,outlier=0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Total time, sec" in out
        assert "resilience events" in out

    def test_tune_bad_fault_profile_errors(self, capsys):
        code = main(["tune", "--resolution", "1deg", "--nodes", "128",
                     "--fault-profile", "bogus=1"])
        assert code == 1
        assert "fault-profile" in capsys.readouterr().err

    def test_gather_with_faults_writes_data_and_summary(self, capsys, tmp_path):
        out_path = str(tmp_path / "bench.json")
        code = main(["gather", "--resolution", "1deg", "--nodes", "128",
                     "--fault-profile", "crash=0.3", "--out", out_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "resilience events" in out

    def test_gather_max_retries_alone_enables_resilient_path(self, capsys, tmp_path):
        out_path = str(tmp_path / "bench.json")
        code = main(["gather", "--resolution", "1deg", "--nodes", "128",
                     "--max-retries", "2", "--out", out_path])
        assert code == 0
        # Clean simulator: resilient path engaged but silent.
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "resilience events" not in out


class TestServiceCLI:
    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--backend", "supervised",
             "--max-queue", "8", "--batch-window", "0.1"]
        )
        assert args.port == 0 and args.backend == "supervised"
        assert args.max_queue == 8 and args.batch_window == 0.1
        assert not args.allow_shutdown

    def test_call_args(self):
        args = build_parser().parse_args(["call", "ping", "--port", "7461"])
        assert args.what == "ping" and args.port == 7461

    def test_serve_call_roundtrip(self, capsys, tmp_path):
        """The full CLI loop: serve on a thread, call it, shut it down."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        thread = threading.Thread(
            target=main,
            args=(["serve", "--port", str(port), "--allow-shutdown"],),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 10
        while True:
            try:
                socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
                break
            except OSError:
                assert time.monotonic() < deadline, "daemon never came up"
                time.sleep(0.05)

        spec_file = str(tmp_path / "tune.json")
        assert main(["spec", "dump", "--resolution", "1deg", "--nodes", "128",
                     "--with-curves", "--out", spec_file]) == 0
        assert main(["call", "ping", "--port", str(port)]) == 0
        # a TuneSpec is not a point spec: typed CLI error, daemon untouched
        assert main(["call", "solve", "--spec", spec_file,
                     "--port", str(port)]) == 1
        assert main(["call", "tune", "--spec", spec_file,
                     "--port", str(port)]) == 0
        assert main(["call", "stats", "--port", str(port)]) == 0
        assert main(["call", "shutdown", "--port", str(port)]) == 0
        thread.join(10)
        assert not thread.is_alive()

        captured = capsys.readouterr()
        assert "hslb service listening" in captured.out
        assert '"pong": true' in captured.out
        assert '"tier": "cold"' in captured.out
        assert '"predicted_total"' in captured.out
        assert "not a SolvePointSpec" in captured.err
