"""``hslb stats``: fetch and render a live daemon's statistics."""

import json

import pytest

from repro import telemetry
from repro.pipeline.cli import build_parser, main
from repro.service import ServiceConfig, serve_in_thread
from repro.telemetry import MetricsRegistry


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    telemetry.disable()
    yield
    telemetry.disable()


def stats_args(handle, *extra):
    host, port = handle.address
    return ["stats", "--host", host, "--port", str(port), *extra]


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.port == 7461 and not args.json and not args.prometheus

    def test_json_and_prometheus_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats", "--json", "--prometheus"])


class TestStatsCommand:
    def test_human_render(self, capsys):
        with serve_in_thread(ServiceConfig()) as handle:
            with handle.client() as client:
                client.ping()
            assert main(stats_args(handle)) == 0
        out = capsys.readouterr().out
        assert "backend: serial" in out
        assert "request tiers" in out
        assert "warm pools:" in out
        assert "telemetry: disabled" in out

    def test_json_output(self, capsys):
        with serve_in_thread(ServiceConfig()) as handle:
            assert main(stats_args(handle, "--json")) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "serial"
        assert "counters" in payload and "service" in payload
        assert payload["telemetry"] is None

    def test_prometheus_without_telemetry_fails_clearly(self, capsys):
        with serve_in_thread(ServiceConfig()) as handle:
            assert main(stats_args(handle, "--prometheus")) == 1
        assert "REPRO_TELEMETRY" in capsys.readouterr().err

    def test_prometheus_scrape_from_instrumented_daemon(self, capsys):
        telemetry.enable(MetricsRegistry())
        with serve_in_thread(ServiceConfig()) as handle:
            with handle.client() as client:
                client.ping()
            telemetry.get_registry().count("probe.metric", 7)
            assert main(stats_args(handle, "--prometheus")) == 0
        out = capsys.readouterr().out
        assert "probe_metric_total 7" in out

    def test_human_render_includes_telemetry_report(self, capsys):
        telemetry.enable(MetricsRegistry())
        with serve_in_thread(ServiceConfig()) as handle:
            telemetry.get_registry().count("probe.metric", 7)
            assert main(stats_args(handle)) == 0
        out = capsys.readouterr().out
        assert "probe.metric" in out
