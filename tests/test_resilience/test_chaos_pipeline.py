"""End-to-end chaos acceptance: the resilient pipeline under real fault
rates must still land on (essentially) the fault-free answer.

The ``chaos`` marker lets CI run these in a dedicated job across several
seeds (``pytest -m chaos`` with ``REPRO_CHAOS_SEEDS=0,1,2``); the default
suite runs them on seed 0 only.
"""

import os

import pytest

from repro.cesm import make_case
from repro.hslb import HSLBPipeline
from repro.io import run_result_to_dict
from repro.resilience import FaultProfile, RetryPolicy

SEEDS = [int(s) for s in os.environ.get("REPRO_CHAOS_SEEDS", "0").split(",")]

# The acceptance profile: one in five benchmark jobs crashes, one in
# twenty comes back 10x inflated.
ACCEPTANCE = FaultProfile(crash_probability=0.2, outlier_probability=0.05)


class TestCleanPathUnchanged:
    def test_no_resilience_args_is_bit_identical_to_legacy(self):
        """Constructing the pipeline without resilience knobs must not
        change a single value (clean-path acceptance)."""
        a = HSLBPipeline(make_case("1deg", 128, seed=0)).run()
        b = HSLBPipeline(
            make_case("1deg", 128, seed=0), fault_profile=FaultProfile()
        ).run()
        assert b.allocation == a.allocation
        assert b.predicted_total == a.predicted_total
        assert b.actual_total == a.actual_total
        assert len(b.events) == 0

    def test_inactive_profile_keeps_plain_simulator_semantics(self):
        from repro.cesm import CoupledRunSimulator

        pipe = HSLBPipeline(make_case("1deg", 128, seed=0))
        assert isinstance(pipe.simulator, CoupledRunSimulator)


@pytest.mark.chaos
class TestChaosAcceptance:
    @pytest.mark.parametrize("layout", [1, 2, 3])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_crash_and_outliers_on_every_layout(self, layout, seed):
        """20% crash + 5% outlier rates: the run completes on all three
        Table I layouts with an actual total within 5% of fault-free."""
        case = make_case("1deg", 128, layout=layout, seed=seed)
        clean = HSLBPipeline(case).run()
        chaos = HSLBPipeline(case, fault_profile=ACCEPTANCE).run()
        drift = abs(chaos.actual_total - clean.actual_total) / clean.actual_total
        assert drift <= 0.05, (
            f"layout {layout} seed {seed}: chaos total {chaos.actual_total:.2f}"
            f" vs clean {clean.actual_total:.2f} ({drift:.1%} apart)"
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_runs_replay_identically(self, seed):
        """Same (seed, FaultProfile) -> identical event logs and
        allocations, across runs of one pipeline object and across fresh
        pipeline objects."""
        case = make_case("1deg", 128, seed=seed)
        pipe = HSLBPipeline(case, fault_profile=ACCEPTANCE)
        first, second = pipe.run(), pipe.run()
        assert first.events == second.events
        assert first.allocation == second.allocation
        assert first.actual_total == second.actual_total

        fresh = HSLBPipeline(case, fault_profile=ACCEPTANCE).run()
        assert fresh.events == first.events
        assert fresh.allocation == first.allocation

    def test_execute_stage_survives_run_crashes(self):
        profile = FaultProfile(
            crash_probability=0.1, run_crash_probability=0.6
        )
        result = HSLBPipeline(
            make_case("1deg", 128, seed=0), fault_profile=profile
        ).run()
        assert result.actual_total > 0

    def test_report_and_archive_carry_the_events(self):
        result = HSLBPipeline(
            make_case("1deg", 128, seed=0), fault_profile=ACCEPTANCE
        ).run()
        assert len(result.events) > 0
        text = result.report()
        assert "resilience events" in text
        payload = run_result_to_dict(result)
        assert payload["events"] == result.events.to_list()

    def test_retry_policy_alone_enables_resilient_path(self):
        result = HSLBPipeline(
            make_case("1deg", 128, seed=0), retry_policy=RetryPolicy()
        ).run()
        # Clean simulator: resilient machinery engaged but silent, and the
        # answer matches the plain pipeline.
        plain = HSLBPipeline(make_case("1deg", 128, seed=0)).run()
        assert result.allocation == plain.allocation
        assert len(result.events) == 0
