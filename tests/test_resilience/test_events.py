import json

import pytest

from repro.resilience import EventKind, EventLog
from repro.resilience.events import Event


class TestEventLog:
    def test_record_assigns_dense_sequence(self):
        log = EventLog()
        a = log.record(EventKind.RETRY, stage="gather", detail="first")
        b = log.record(EventKind.POINT_DROPPED, stage="gather", detail="second")
        assert (a.seq, b.seq) == (0, 1)
        assert len(log) == 2
        assert [e.kind for e in log] == [EventKind.RETRY, EventKind.POINT_DROPPED]

    def test_empty_log_is_falsy(self):
        assert not EventLog()
        log = EventLog()
        log.record(EventKind.RETRY, stage="gather", detail="x")
        assert log

    def test_of_kind_and_counts(self):
        log = EventLog()
        log.record(EventKind.RETRY, stage="gather", detail="a")
        log.record(EventKind.RETRY, stage="gather", detail="b")
        log.record(EventKind.SOLVER_FALLBACK, stage="solve", detail="c")
        assert len(log.of_kind(EventKind.RETRY)) == 2
        assert log.counts() == {EventKind.RETRY: 2, EventKind.SOLVER_FALLBACK: 1}

    def test_extra_kwargs_land_in_data(self):
        log = EventLog()
        e = log.record(
            EventKind.RETRY, stage="gather", detail="d",
            component="atm", attempt=2, nodes=64, delay=0.5,
        )
        assert e.component == "atm" and e.attempt == 2
        assert e.data == {"nodes": 64, "delay": 0.5}

    def test_round_trip_preserves_equality(self):
        log = EventLog()
        log.record(EventKind.OUTLIER_REJECTED, stage="gather", detail="z",
                   component="ocn", nodes=16, value=532.8)
        log.record(EventKind.BASELINE_FALLBACK, stage="solve", detail="y")
        restored = EventLog.from_list(log.to_list())
        assert restored == log
        json.dumps(log.to_list())  # JSON-safe as-is

    def test_equality_is_content_based(self):
        a, b = EventLog(), EventLog()
        a.record(EventKind.RETRY, stage="gather", detail="same")
        b.record(EventKind.RETRY, stage="gather", detail="same")
        assert a == b
        b.record(EventKind.RETRY, stage="gather", detail="extra")
        assert a != b

    def test_summary_counts_and_tail(self):
        log = EventLog()
        for i in range(15):
            log.record(EventKind.RETRY, stage="gather", detail=f"r{i}",
                       component="ice")
        text = log.summary(max_lines=12)
        assert "resilience events (15): retry=15" in text
        assert "... 3 earlier events" in text
        assert "[14] retry (gather/ice): r14" in text
        assert "[2]" not in text  # truncated head

    def test_summary_of_empty_log(self):
        assert EventLog().summary() == "resilience events: none"

    def test_event_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Event.from_dict({"seq": 0, "kind": "nope", "stage": "s", "detail": "d"})
