import math

import pytest

from repro.cesm import ComponentId, CoupledRunSimulator, make_case
from repro.exceptions import (
    ConfigurationError,
    InjectedCrashError,
    InjectedFaultError,
    InjectedTimeoutError,
    SimulationError,
)
from repro.resilience import FaultProfile, FaultySimulator

ATM, OCN = ComponentId.ATM, ComponentId.OCN


def faulty(profile, seed=0, nodes=128):
    case = make_case("1deg", nodes, seed=seed)
    return FaultySimulator(CoupledRunSimulator(case), profile)


class TestFaultProfile:
    def test_inactive_by_default(self):
        assert not FaultProfile().active
        assert FaultProfile(crash_probability=0.1).active
        assert FaultProfile(hot_components=(("atm", 0.5),)).active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_probability": -0.1},
            {"outlier_probability": 1.5},
            {"outlier_multiplier": 1.0},
            {"timeout_seconds": 0.0},
            {"hot_components": (("not_a_component", 0.2),)},
            {"hot_components": (("atm", 2.0),)},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultProfile(**kwargs)

    def test_hot_component_raises_crash_probability(self):
        p = FaultProfile(crash_probability=0.1, hot_components=(("atm", 0.3),))
        assert p.crash_probability_for(ATM) == pytest.approx(0.4)
        assert p.crash_probability_for(OCN) == pytest.approx(0.1)

    def test_parse_full_spec(self):
        p = FaultProfile.parse("crash=0.2,outlier=0.05,mult=8,hot.atm=0.3")
        assert p.crash_probability == 0.2
        assert p.outlier_probability == 0.05
        assert p.outlier_multiplier == 8.0
        assert p.hot_components == (("atm", 0.3),)

    @pytest.mark.parametrize("spec", ["crash", "nope=1", "crash=abc", "hot.xyz=0.1"])
    def test_parse_rejects_garbage(self, spec):
        with pytest.raises(ConfigurationError):
            FaultProfile.parse(spec)

    def test_describe_round_trips_through_parse(self):
        p = FaultProfile.parse("crash=0.2,outlier=0.05,hot.ice=0.1")
        assert FaultProfile.parse(p.describe()) == p
        assert FaultProfile().describe() == "none"


class TestFaultySimulator:
    def test_inactive_profile_is_transparent(self):
        sim = faulty(FaultProfile())
        clean = CoupledRunSimulator(sim.case)
        for comp in (ATM, OCN):
            assert sim.benchmark(comp, 64) == clean.benchmark(comp, 64)
        sweep = sim.benchmark_sweep(ATM, [16, 32])
        assert sweep == clean.benchmark_sweep(ATM, [16, 32])

    def test_certain_crash_raises(self):
        sim = faulty(FaultProfile(crash_probability=1.0))
        with pytest.raises(InjectedCrashError):
            sim.benchmark(ATM, 64)

    def test_certain_timeout_raises_with_budget(self):
        sim = faulty(FaultProfile(timeout_probability=1.0, timeout_seconds=120.0))
        with pytest.raises(InjectedTimeoutError) as err:
            sim.benchmark(ATM, 64)
        assert err.value.timeout_seconds == 120.0
        assert isinstance(err.value, SimulationError)  # one except clause catches all

    def test_corruption_returns_nan_or_negative(self):
        sim = faulty(FaultProfile(corrupt_probability=1.0))
        values = [sim.benchmark(ATM, n) for n in (16, 32, 64, 128)]
        assert all(math.isnan(v) or v < 0 for v in values)
        assert any(math.isnan(v) for v in values) or any(v < 0 for v in values)

    def test_outlier_multiplies_true_time(self):
        sim = faulty(FaultProfile(outlier_probability=1.0, outlier_multiplier=10.0))
        clean = CoupledRunSimulator(sim.case)
        assert sim.benchmark(ATM, 64) == pytest.approx(10.0 * clean.benchmark(ATM, 64))

    def test_fault_draws_are_deterministic_per_attempt(self):
        profile = FaultProfile(crash_probability=0.5)

        def pattern():
            sim = faulty(profile, seed=3)
            out = []
            for _ in range(8):  # repeated asks advance the attempt counter
                try:
                    sim.benchmark(ATM, 64)
                    out.append("ok")
                except InjectedCrashError:
                    out.append("crash")
            return out

        first, second = pattern(), pattern()
        assert first == second  # pure function of (seed, profile)
        assert "crash" in first and "ok" in first  # p=0.5 over 8 draws

    def test_reset_replays_the_same_faults(self):
        sim = faulty(FaultProfile(crash_probability=0.5), seed=3)

        def observe():
            try:
                return sim.benchmark(ATM, 64)
            except InjectedCrashError:
                return "crash"

        history = [observe() for _ in range(6)]
        sim.reset()
        assert [observe() for _ in range(6)] == history

    def test_run_crash_probability_hits_coupled_runs(self):
        sim = faulty(FaultProfile(run_crash_probability=1.0))
        alloc = {ComponentId.ICE: 40, ComponentId.LND: 8,
                 ComponentId.ATM: 48, ComponentId.OCN: 16}
        with pytest.raises(InjectedFaultError):
            sim.run_coupled(alloc)
        # benchmarks are untouched by the run-level knob
        assert sim.benchmark(ATM, 64) > 0

    def test_clean_coupled_run_passes_through(self):
        sim = faulty(FaultProfile(crash_probability=0.3))
        alloc = {ComponentId.ICE: 40, ComponentId.LND: 8,
                 ComponentId.ATM: 48, ComponentId.OCN: 16}
        clean = CoupledRunSimulator(sim.case)
        assert sim.run_coupled(alloc).total == clean.run_coupled(alloc).total
