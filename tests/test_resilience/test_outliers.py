import numpy as np
import pytest

from repro.cesm import ComponentId, CoupledRunSimulator, make_case
from repro.resilience import mad_scores, worst_outlier
from repro.resilience.outliers import theil_sen_line


class TestTheilSen:
    def test_exact_line_recovered(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        y = 2.0 * x + 1.0
        slope, intercept = theil_sen_line(x, y)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_single_outlier_does_not_move_the_line(self):
        x = np.arange(1.0, 8.0)
        y = 2.0 * x + 1.0
        y[3] += 50.0
        slope, _ = theil_sen_line(x, y)
        assert slope == pytest.approx(2.0, abs=0.5)

    def test_degenerate_x_falls_back_to_median(self):
        slope, intercept = theil_sen_line(
            np.array([2.0, 2.0]), np.array([1.0, 3.0])
        )
        assert slope == 0.0
        assert intercept == pytest.approx(2.0)


class TestWorstOutlier:
    def sweep(self, comp=ComponentId.ATM, points=6):
        case = make_case("1deg", 1024, seed=0)
        sim = CoupledRunSimulator(case)
        counts = case.benchmark_node_counts(comp, points=points)
        return counts, [sim.benchmark(comp, n) for n in counts]

    def test_clean_sweep_passes(self):
        nodes, times = self.sweep()
        assert worst_outlier(nodes, times, threshold=3.5) is None

    @pytest.mark.parametrize("bad_idx", [0, 2, 5])
    def test_10x_outlier_flagged_at_any_position(self, bad_idx):
        nodes, times = self.sweep()
        times = list(times)
        times[bad_idx] *= 10.0
        assert worst_outlier(nodes, times, threshold=3.5) == bad_idx

    def test_needs_at_least_four_points(self):
        # With 3 points an outlier is indistinguishable from curvature.
        assert worst_outlier([4, 16, 64], [100.0, 25.0, 10000.0], 3.5) is None

    def test_scores_scale_with_deviation(self):
        nodes, times = self.sweep()
        clean = mad_scores(nodes, times).max()
        times = list(times)
        times[2] *= 10.0
        dirty = mad_scores(nodes, times)[2]
        assert dirty > 3.5 > clean
