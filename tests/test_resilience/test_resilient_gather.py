import numpy as np
import pytest

from repro.cesm import ComponentId, CoupledRunSimulator, make_case
from repro.exceptions import GatherError
from repro.hslb import gather_benchmarks
from repro.resilience import (
    EventKind,
    EventLog,
    FaultProfile,
    FaultySimulator,
    RetryPolicy,
)

ATM, OCN, ICE, LND = (
    ComponentId.ATM,
    ComponentId.OCN,
    ComponentId.ICE,
    ComponentId.LND,
)


def clean_sim(nodes=128, seed=0):
    return CoupledRunSimulator(make_case("1deg", nodes, seed=seed))


def chaos_sim(profile, nodes=128, seed=0):
    return FaultySimulator(clean_sim(nodes, seed), profile)


class TestCleanPathEquivalence:
    def test_policy_on_clean_simulator_changes_nothing(self):
        """The resilient sweep over a fault-free simulator must return the
        same samples as the historical plain sweep."""
        plain = gather_benchmarks(clean_sim(), points=5)
        events = EventLog()
        resilient = gather_benchmarks(
            clean_sim(), points=5, policy=RetryPolicy(), events=events
        )
        for comp in plain.components():
            np.testing.assert_array_equal(plain.nodes(comp), resilient.nodes(comp))
            np.testing.assert_array_equal(plain.times(comp), resilient.times(comp))
        assert len(events) == 0


class TestRetries:
    def test_crashes_are_retried_and_logged(self):
        events = EventLog()
        data = gather_benchmarks(
            chaos_sim(FaultProfile(crash_probability=0.3)),
            points=5,
            policy=RetryPolicy(),
            events=events,
        )
        # Full sweep recovered: every component keeps its 5 points.
        for comp in data.components():
            assert data.point_count(comp) == 5
        retries = events.of_kind(EventKind.RETRY)
        assert retries, "a 30% crash rate must trigger at least one retry"
        assert all(e.stage == "gather" for e in retries)

    def test_corrupt_values_are_rejected_and_retried(self):
        # 100% corruption: every attempt returns NaN/negative, so every
        # point exhausts retries and the sweep cannot reach 3 points.
        events = EventLog()
        with pytest.raises(GatherError):
            gather_benchmarks(
                chaos_sim(FaultProfile(corrupt_probability=1.0)),
                points=5,
                policy=RetryPolicy(max_attempts=2, sweep_budget=100),
                events=events,
            )
        assert any(
            "corrupt measurement" in e.detail
            for e in events.of_kind(EventKind.RETRY)
        )

    def test_sweep_budget_caps_total_fight(self):
        events = EventLog()
        with pytest.raises(GatherError):
            gather_benchmarks(
                chaos_sim(FaultProfile(crash_probability=1.0)),
                points=5,
                policy=RetryPolicy(max_attempts=4, sweep_budget=6),
                events=events,
            )
        # Budget of 6 failures: nowhere near 5 points x 4 attempts.
        failed = [e for e in events.of_kind(EventKind.RETRY)]
        assert len(failed) <= 5 + 6  # one give-up event per point + retries


class TestDegradation:
    def test_hot_component_fails_with_partial_data(self):
        """A component whose every benchmark crashes aborts the gather, but
        the error carries what the other components measured."""
        profile = FaultProfile(hot_components=(("ocn", 1.0),))
        events = EventLog()
        with pytest.raises(GatherError) as err:
            gather_benchmarks(
                chaos_sim(profile),
                points=5,
                policy=RetryPolicy(max_attempts=2),
                events=events,
            )
        partial = err.value.partial
        assert partial is not None
        assert OCN not in partial.components()
        # Everything gathered before the sick component survived intact.
        for comp in partial.components():
            assert partial.point_count(comp) == 5
        assert events.of_kind(EventKind.POINT_DROPPED)

    def test_outlier_is_remeasured(self):
        events = EventLog()
        data = gather_benchmarks(
            chaos_sim(FaultProfile(outlier_probability=0.15), seed=1),
            points=6,
            policy=RetryPolicy(),
            events=events,
        )
        rejected = events.of_kind(EventKind.OUTLIER_REJECTED)
        assert rejected, "15% outliers over 24 points should trip the MAD test"
        assert events.of_kind(EventKind.REMEASURED)
        # The re-measured sweeps must be clean enough to carry full points.
        for comp in data.components():
            assert data.point_count(comp) >= 5

    def test_deterministic_event_log(self):
        profile = FaultProfile(crash_probability=0.25, outlier_probability=0.1)

        def run():
            events = EventLog()
            gather_benchmarks(
                chaos_sim(profile, seed=2), points=5,
                policy=RetryPolicy(), events=events,
            )
            return events

        assert run() == run()


class TestDeadline:
    def test_expired_deadline_stops_retrying(self):
        from repro.resilience import Deadline

        class Clock:
            now = 1000.0

            def __call__(self):
                return self.now

        deadline = Deadline(5.0, clock=Clock())
        Clock.now += 10.0  # already expired before the sweep starts
        events = EventLog()
        # Every point gets exactly one attempt; a 100% crash rate then
        # fails the component without any retries.
        with pytest.raises(GatherError):
            gather_benchmarks(
                chaos_sim(FaultProfile(crash_probability=1.0)),
                points=5,
                policy=RetryPolicy(max_attempts=4),
                events=events,
                deadline=deadline,
            )
        assert all(
            e.data.get("exhausted") for e in events.of_kind(EventKind.RETRY)
        )
