import pytest

from repro.cesm import ComponentId, make_case
from repro.cesm.layouts import validate_allocation
from repro.exceptions import ConfigurationError, IterationLimitError, SolverError
from repro.fitting.perfmodel import PerfModel
from repro.hslb import (
    HSLBPipeline,
    proportional_baseline,
    solve_allocation,
    solve_allocation_resilient,
)
from repro.lp.simplex import SimplexOptions
from repro.minlp import MINLPOptions
from repro.resilience import Deadline, EventKind, EventLog

ATM, OCN, ICE, LND = (
    ComponentId.ATM,
    ComponentId.OCN,
    ComponentId.ICE,
    ComponentId.LND,
)


def fitted_models(case=None, seed=0):
    pipeline = HSLBPipeline(case or make_case("1deg", 128, seed=seed))
    return pipeline.fit(pipeline.gather())


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestFallbackChain:
    def test_clean_solve_uses_primary_and_logs_nothing(self):
        case = make_case("1deg", 128, seed=0)
        fits = fitted_models(case)
        out = solve_allocation_resilient(case, fits)
        assert out.method == "lpnlp"
        assert len(out.events) == 0
        assert out.allocation == solve_allocation(case, fits).allocation

    def test_primary_failure_falls_back_to_other_bnb(self, monkeypatch):
        case = make_case("1deg", 128, seed=0)
        fits = fitted_models(case)
        expected = solve_allocation(case, fits, method="bnb").allocation

        def boom(model, options=None):
            raise SolverError("forced primary failure")

        monkeypatch.setattr("repro.hslb.solve.solve_lpnlp", boom)
        events = EventLog()
        out = solve_allocation_resilient(case, fits, method="lpnlp", events=events)
        assert out.method == "bnb"
        assert out.allocation == expected
        validate_allocation(case.layout, out.allocation, case.total_nodes)
        fallback, = events.of_kind(EventKind.SOLVER_FALLBACK)
        assert fallback.data == {"backend": "lpnlp", "fallback": "bnb"}

    def test_both_backends_down_yields_baseline(self, monkeypatch):
        case = make_case("1deg", 128, seed=0)
        fits = fitted_models(case)

        def boom(model, options=None):
            raise SolverError("forced failure")

        monkeypatch.setattr("repro.hslb.solve.solve_lpnlp", boom)
        monkeypatch.setattr("repro.hslb.solve.solve_nlp_bnb", boom)
        events = EventLog()
        out = solve_allocation_resilient(case, fits, events=events)
        assert out.method == "baseline"
        assert out.solver_result is None
        validate_allocation(case.layout, out.allocation, case.total_nodes)
        assert out.predicted_total > 0
        assert len(events.of_kind(EventKind.SOLVER_FALLBACK)) == 2
        assert events.of_kind(EventKind.BASELINE_FALLBACK)

    def test_configuration_errors_are_not_swallowed(self):
        case = make_case("1deg", 128, seed=0)
        with pytest.raises(ConfigurationError):
            solve_allocation_resilient(case, fitted_models(case), method="nope")

    def test_iteration_limit_error_surfaces_then_recovers(self):
        """A starved simplex raises IterationLimitError from the bare solve;
        the resilient wrapper treats it as any SolverError and recovers via
        the NLP-based B&B (which never touches the simplex)."""
        case = make_case("1deg", 128, seed=0)
        fits = fitted_models(case)
        starved = MINLPOptions(lp_options=SimplexOptions(max_iterations=1))
        with pytest.raises(IterationLimitError):
            solve_allocation(case, fits, method="lpnlp", options=starved)

        events = EventLog()
        out = solve_allocation_resilient(
            case, fits, method="lpnlp", options=starved, events=events
        )
        assert out.method == "bnb"
        fallback, = events.of_kind(EventKind.SOLVER_FALLBACK)
        assert "iteration limit" in fallback.detail


class TestDeadline:
    def test_expired_deadline_goes_straight_to_baseline(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        clock.now = 20.0
        case = make_case("1deg", 128, seed=0)
        events = EventLog()
        out = solve_allocation_resilient(
            case, fitted_models(case), events=events, deadline=deadline
        )
        assert out.method == "baseline"
        assert events.of_kind(EventKind.DEADLINE_EXPIRED)
        validate_allocation(case.layout, out.allocation, case.total_nodes)

    def test_check_hook_stops_both_bnb_loops(self):
        from repro.hslb.layout_models import layout_model_for_case
        from repro.minlp import solve_lpnlp, solve_nlp_bnb
        from repro.minlp.result import MINLPStatus

        case = make_case("1deg", 128, seed=0)
        perf = {c: (f.model if hasattr(f, "model") else f)
                for c, f in fitted_models(case).items()}
        model = layout_model_for_case(case, perf)
        opts = MINLPOptions(check_hook=lambda: True)
        for solver in (solve_lpnlp, solve_nlp_bnb):
            result = solver(model, opts)
            assert result.status is MINLPStatus.TIME_LIMIT
            assert "check hook" in result.message


class TestProportionalBaseline:
    # Generic power-law-ish models; exact values are irrelevant, the
    # baseline only needs relative work magnitudes.
    PERF = {
        ICE: PerfModel(a=400.0, b=0.001, c=1.2, d=5.0),
        LND: PerfModel(a=150.0, b=0.001, c=1.2, d=3.0),
        ATM: PerfModel(a=9000.0, b=0.002, c=1.3, d=20.0),
        OCN: PerfModel(a=6000.0, b=0.001, c=1.2, d=30.0),
    }

    @pytest.mark.parametrize("layout", [1, 2, 3])
    @pytest.mark.parametrize("nodes", [128, 512, 2048])
    def test_feasible_on_every_layout(self, layout, nodes):
        case = make_case("1deg", nodes, layout=layout, seed=0)
        alloc = proportional_baseline(case, self.PERF)
        validate_allocation(case.layout, alloc, case.total_nodes)
        assert alloc[OCN] in case.ocean_allowed()

    def test_feasible_on_eighth_degree(self):
        case = make_case("8th", 4096, seed=0)
        alloc = proportional_baseline(case, self.PERF)
        validate_allocation(case.layout, alloc, case.total_nodes)

    def test_unconstrained_ocean_case(self):
        case = make_case("1deg", 512, unconstrained_ocean=True, seed=0)
        alloc = proportional_baseline(case, self.PERF)
        validate_allocation(case.layout, alloc, case.total_nodes)
