import pytest

from repro.exceptions import ConfigurationError, DeadlineExceededError
from repro.resilience import Deadline, RetryPolicy


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"sweep_budget": -1},
            {"base_delay": -0.1},
            {"backoff": 0.5},
            {"jitter": 1.5},
            {"outlier_threshold": 0.0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_zero_base_delay_means_no_waiting(self):
        policy = RetryPolicy(base_delay=0.0)
        assert policy.delay_for(1, seed=0, ) == 0.0
        assert policy.delay_for(5, seed=0) == 0.0

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=1.0, backoff=2.0, jitter=0.0, max_delay=5.0)
        delays = [policy.delay_for(a, 0, "k") for a in (1, 2, 3, 4, 5)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.25)
        d1 = policy.delay_for(2, 7, "bench", "atm", "64")
        d2 = policy.delay_for(2, 7, "bench", "atm", "64")
        assert d1 == d2  # same (seed, key, attempt) -> same delay
        assert 2.0 * 0.75 <= d1 <= 2.0 * 1.25
        assert d1 != policy.delay_for(2, 8, "bench", "atm", "64")

    def test_pause_skips_sleep_for_zero_delay(self):
        # The sleeper is a per-instance field (not class state), so tests
        # inject it at construction instead of patching the class.
        calls = []
        policy = RetryPolicy(sleep=calls.append)
        policy.pause(0.0)
        assert calls == []
        policy.pause(0.25)
        assert calls == [0.25]


class TestDeadline:
    def test_unlimited_never_expires(self):
        d = Deadline()
        assert not d.is_limited
        assert d.remaining() == float("inf")
        assert not d.expired()
        d.check("anything")  # no raise

    def test_limited_expiry_with_fake_clock(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        clock.now = 9.0
        assert not d.expired()
        assert d.remaining() == pytest.approx(1.0)
        clock.now = 10.5
        assert d.expired()
        with pytest.raises(DeadlineExceededError, match="during solve"):
            d.check("solve")

    def test_as_hook_tracks_expiry(self):
        clock = FakeClock()
        hook = Deadline(1.0, clock=clock).as_hook()
        assert hook() is False
        clock.now = 2.0
        assert hook() is True

    def test_coerce(self):
        d = Deadline(5.0)
        assert Deadline.coerce(d) is d
        assert Deadline.coerce(None).is_limited is False
        assert Deadline.coerce(3.0).seconds == 3.0

    def test_nonpositive_seconds_rejected(self):
        with pytest.raises(ConfigurationError):
            Deadline(0.0)
        with pytest.raises(ConfigurationError):
            Deadline(-1.0)
