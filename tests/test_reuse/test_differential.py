"""Cold-vs-reuse differential gate (the engine's core guarantee).

Within a channel — members differing only in linear rows and bounds, here a
what-if sweep over total node counts — a warm :class:`SolveFamily` must
reproduce every cold optimum bit-for-bit and must never *grow* the search
tree, on all three Table I layouts with both branch-and-bound solvers.
This battery (the paper's 1-degree curves at 128/120/112 nodes) is the one
the CI perf-smoke job pins.
"""

import pytest

from repro.analysis.whatif import solve_layout_points
from repro.cesm import ComponentId, Layout, make_case
from repro.hslb import HSLBPipeline
from repro.reuse import SolveFamily

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

SIZES = (128, 120, 112)
LAYOUTS = (Layout.HYBRID, Layout.SEQUENTIAL_SPLIT, Layout.FULLY_SEQUENTIAL)


@pytest.fixture(scope="module")
def calibrated():
    """Fitted 1-degree curves + bounds + ocean set, computed once."""
    case = make_case("1deg", max(SIZES), seed=0)
    pipeline = HSLBPipeline(case)
    fits = pipeline.fit(pipeline.gather())
    perf = {c: f.model for c, f in fits.items()}
    bounds = {c: case.component_bounds(c) for c in (A, O, I, L)}
    return perf, bounds, case.ocean_allowed()


def sweep(calibrated, layout, method, reuse):
    perf, bounds, ocn = calibrated
    return solve_layout_points(
        perf, bounds, SIZES, layout=layout, ocn_allowed=ocn,
        method=method, reuse=reuse,
    )


@pytest.mark.parametrize("method", ("lpnlp", "bnb"))
@pytest.mark.parametrize("layout", LAYOUTS, ids=lambda lay: lay.name.lower())
class TestColdVersusReuse:
    def test_bit_identical_and_no_node_growth(self, calibrated, layout, method):
        cold = sweep(calibrated, layout, method, reuse=False)
        family = SolveFamily()
        warm = sweep(calibrated, layout, method, reuse=family)
        for c, w in zip(cold, warm):
            assert w.makespan.hex() == c.makespan.hex(), c.total_nodes
            assert w.allocation == c.allocation, c.total_nodes
            assert w.solver_result.nodes <= c.solver_result.nodes, c.total_nodes
        # the family actually accumulated state (not a silent no-op)
        stats = family.stats()
        assert stats["incumbents"] >= 1
        assert stats["channels"] == 1


class TestInputOrderInvariance:
    def test_results_follow_input_order(self, calibrated):
        descending = sweep(calibrated, Layout.HYBRID, "lpnlp", reuse=SolveFamily())
        perf, bounds, ocn = calibrated
        ascending = solve_layout_points(
            perf, bounds, tuple(reversed(SIZES)), layout=Layout.HYBRID,
            ocn_allowed=ocn, method="lpnlp", reuse=SolveFamily(),
        )
        # same members, restored to the caller's order on both sides
        assert [p.total_nodes for p in ascending] == list(reversed(SIZES))
        by_n = {p.total_nodes: p for p in descending}
        for p in ascending:
            assert p.makespan.hex() == by_n[p.total_nodes].makespan.hex()
            assert p.solver_result.nodes == by_n[p.total_nodes].solver_result.nodes

    def test_ascending_input_still_matches_cold(self, calibrated):
        cold = sweep(calibrated, Layout.HYBRID, "lpnlp", reuse=False)
        perf, bounds, ocn = calibrated
        warm = solve_layout_points(
            perf, bounds, tuple(reversed(SIZES)), layout=Layout.HYBRID,
            ocn_allowed=ocn, method="lpnlp", reuse=SolveFamily(),
        )
        by_n = {p.total_nodes: p for p in warm}
        for c in cold:
            w = by_n[c.total_nodes]
            assert w.makespan.hex() == c.makespan.hex()
            assert w.solver_result.nodes <= c.solver_result.nodes


class TestWideLadder:
    """The Sec. IV-C budget ladder: published 1-degree sizes + intermediates.

    Auto-created families fall back to the unconditionally safe feature
    subset (incumbent + basis) above the spread guard, which keeps wide
    ladders bit-identical with shrinking trees on *any* curve set.
    """

    LADDER = (2048, 1024, 512, 256, 128)

    def test_guard_picks_family_config(self):
        from repro.analysis.whatif import _sweep_family

        tight = _sweep_family("lpnlp", True, SIZES)
        assert tight.enable_cuts and tight.enable_pseudocosts
        assert tight.enable_fbbt
        wide = _sweep_family("lpnlp", True, self.LADDER)
        assert not wide.enable_cuts
        assert not wide.enable_pseudocosts
        assert not wide.enable_fbbt
        assert wide.enable_incumbent and wide.enable_basis
        override = SolveFamily.for_counts(self.LADDER, cuts=True)
        assert override.enable_cuts and not override.enable_pseudocosts
        explicit = SolveFamily(pseudocosts=True)
        assert _sweep_family("lpnlp", explicit, self.LADDER) is explicit
        assert _sweep_family("oracle", True, self.LADDER) is None
        assert _sweep_family("lpnlp", False, self.LADDER) is None

    def test_ladder_bit_identical_and_shrinking(self, calibrated):
        perf, bounds, ocn = calibrated
        cold = solve_layout_points(
            perf, bounds, self.LADDER, layout=Layout.HYBRID,
            ocn_allowed=ocn, method="lpnlp", reuse=False,
        )
        warm = solve_layout_points(
            perf, bounds, self.LADDER, layout=Layout.HYBRID,
            ocn_allowed=ocn, method="lpnlp", reuse=True,
        )
        for c, w in zip(cold, warm):
            assert w.makespan.hex() == c.makespan.hex(), c.total_nodes
            assert w.allocation == c.allocation, c.total_nodes
            assert w.solver_result.nodes <= c.solver_result.nodes, c.total_nodes
        total_cold = sum(c.solver_result.nodes for c in cold)
        total_warm = sum(w.solver_result.nodes for w in warm)
        assert total_warm < total_cold

    def test_high_fit_curves_never_explode(self):
        # Regression: on curves fitted at the ladder's *top* size, carrying
        # cuts down the ladder explodes layout-2 trees 4 -> 1641 nodes
        # (a ~100x slowdown).  The guard's safe subset must stay
        # bit-identical with no growth on exactly that configuration.
        case = make_case("1deg", max(self.LADDER), seed=0)
        pipeline = HSLBPipeline(case)
        fits = pipeline.fit(pipeline.gather())
        perf = {c: f.model for c, f in fits.items()}
        bounds = {c: case.component_bounds(c) for c in (A, O, I, L)}
        kw = dict(
            layout=Layout.SEQUENTIAL_SPLIT, ocn_allowed=case.ocean_allowed(),
            method="lpnlp",
        )
        cold = solve_layout_points(perf, bounds, self.LADDER, reuse=False, **kw)
        warm = solve_layout_points(perf, bounds, self.LADDER, reuse=True, **kw)
        for c, w in zip(cold, warm):
            assert w.makespan.hex() == c.makespan.hex(), c.total_nodes
            assert w.allocation == c.allocation, c.total_nodes
            assert w.solver_result.nodes <= c.solver_result.nodes, c.total_nodes


class TestCounters:
    def test_reuse_counters_surface_on_results(self, calibrated):
        family = SolveFamily()
        warm = sweep(calibrated, Layout.HYBRID, "lpnlp", reuse=family)
        # the first-solved (largest) member runs cold; later members carry
        # cuts and report it on their MINLPResult
        carried = sum(
            p.solver_result.reuse_counters.get("cuts_carried", 0) for p in warm
        )
        assert carried > 0
        assert family.counters.get("cuts_carried", 0) == carried
