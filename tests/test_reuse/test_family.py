"""SolveFamily pool mechanics (repro.reuse.family).

Covers the cut pool (dedup, per-tag cap, tag/column filtering), channel
keying of incumbents and pseudocosts, incumbent projection, the
snapshot/delta plumbing behind deterministic parallel composition, and
backend-independence of family_map.
"""

import pytest

from repro.analysis.whatif import _solve_layout_point, layout_point_specs
from repro.cesm import ComponentId, Layout
from repro.expr.linearize import TangentCut
from repro.fitting import PerfModel
from repro.hslb import build_layout_model
from repro.minlp.lpnlp import solve_lpnlp
from repro.model.model import Model
from repro.model.variable import VarType
from repro.reuse import SolveFamily, family_map

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

PERF = {
    I: PerfModel(a=8000.0, d=18.0),
    L: PerfModel(a=1465.0, d=2.6),
    A: PerfModel(a=27000.0, d=45.0),
    O: PerfModel(a=7900.0, b=0.02, c=1.0, d=36.0),
}
BOUNDS = {I: (8, 2048), L: (4, 2048), A: (8, 2048), O: (8, 2048)}
OCN_ALLOWED = [8, 16, 24, 32]


def layout_model(layout=Layout.HYBRID, n=64, perf=PERF):
    return build_layout_model(layout, n, perf, BOUNDS, ocn_allowed=OCN_ALLOWED)


def cut(coeffs, rhs):
    return TangentCut(coeffs=coeffs, rhs=rhs)


class TestCutPool:
    def test_duplicate_cuts_dedupe(self):
        fam = SolveFamily()
        c = cut({"x": 1.0}, 5.0)
        fam.absorb(new_cuts=[("tag", c), ("tag", cut({"x": 1.0}, 5.0))])
        assert fam.num_cuts == 1
        assert fam.counters["cuts_deduped"] == 1

    def test_per_tag_cap_drops_newest(self):
        fam = SolveFamily(max_cuts_per_tag=2)
        cuts = [("tag", cut({"x": 1.0}, float(k))) for k in range(4)]
        fam.absorb(new_cuts=cuts)
        assert fam.num_cuts == 2
        assert fam.counters["cuts_capped"] == 2
        # the survivors are the oldest two — append-only prefix order.
        kept = [c.rhs for _, _, c in fam._cuts]
        assert kept == [0.0, 1.0]

    def test_cap_is_per_tag(self):
        fam = SolveFamily(max_cuts_per_tag=1)
        fam.absorb(new_cuts=[
            ("a", cut({"x": 1.0}, 1.0)),
            ("b", cut({"x": 1.0}, 2.0)),
        ])
        assert fam.num_cuts == 2

    def test_plan_filters_by_tag_and_columns(self):
        model = layout_model()
        fam = SolveFamily(fbbt=False)
        probe = fam.plan(model, columns=model.variable_names(), base_rows=3)
        tag = probe.body_tags[0]
        good = cut({model.variable_names()[0]: 1.0}, 1.0)
        alien_tag = cut({model.variable_names()[0]: 1.0}, 2.0)
        alien_col = cut({"not_a_column": 1.0}, 3.0)
        fam.absorb(new_cuts=[(tag, good), ("elsewhere", alien_tag), (tag, alien_col)])
        plan = fam.plan(model, columns=model.variable_names(), base_rows=3)
        assert plan.cuts == [good]

    def test_covered_requires_every_tag(self):
        model = layout_model()
        fam = SolveFamily(fbbt=False)
        probe = fam.plan(model, columns=model.variable_names(), base_rows=3)
        name = model.variable_names()[0]
        fam.absorb(new_cuts=[(probe.body_tags[0], cut({name: 1.0}, 1.0))])
        partial = fam.plan(model, columns=model.variable_names(), base_rows=3)
        assert not partial.covered
        fam.absorb(new_cuts=[
            (tag, cut({name: 1.0}, 10.0 + i))
            for i, tag in enumerate(set(probe.body_tags))
        ])
        full = fam.plan(model, columns=model.variable_names(), base_rows=3)
        assert full.covered


class TestChannels:
    def test_same_curves_share_a_channel(self):
        fam = SolveFamily(fbbt=False)
        p64 = fam.plan(layout_model(n=64))
        p56 = fam.plan(layout_model(n=56))
        assert p64.channel == p56.channel

    def test_swapped_curve_changes_channel(self):
        fam = SolveFamily(fbbt=False)
        base = fam.plan(layout_model())
        swapped_perf = {**PERF, I: PerfModel(a=9000.0, d=18.0)}
        swapped = fam.plan(layout_model(perf=swapped_perf))
        assert base.channel != swapped.channel

    def test_incumbent_stays_in_channel(self):
        model = layout_model()
        sol = solve_lpnlp(model).solution
        assert sol is not None
        fam = SolveFamily(fbbt=False)
        plan = fam.plan(model)
        fam.absorb(channel=plan.channel, incumbent_env=sol, objective=1.0)
        again = fam.plan(layout_model(n=56))
        assert again.fixings is not None
        swapped_perf = {**PERF, I: PerfModel(a=9000.0, d=18.0)}
        other = fam.plan(layout_model(perf=swapped_perf))
        assert other.fixings is None

    def test_pseudocosts_stay_in_channel(self):
        fam = SolveFamily(fbbt=False)
        model = layout_model()
        plan = fam.plan(model)
        fam.absorb(
            channel=plan.channel,
            pseudo=({("n_atm", "up"): 2.0}, {("n_atm", "up"): 1}),
        )
        assert fam.plan(layout_model(n=56)).pseudo is not None
        assert fam.plan(layout_model(n=56)).counters["pseudocost_entries"] == 1
        swapped_perf = {**PERF, I: PerfModel(a=9000.0, d=18.0)}
        assert fam.plan(layout_model(perf=swapped_perf)).pseudo is None

    def test_stats_count_channels(self):
        fam = SolveFamily(fbbt=False)
        plan = fam.plan(layout_model())
        fam.absorb(channel=plan.channel, pseudo=({}, {("x", "up"): 1}))
        assert fam.stats()["channels"] == 1


class TestIncumbentProjection:
    def proj_model(self):
        m = Model("proj")
        t = m.add_variable("t", VarType.INTEGER, 0, 100)
        m.add_allowed_values(t, [8, 16, 40], encode="sos")
        m.add_variable("x", VarType.INTEGER, 0, 10)
        return m

    def test_sos_snaps_and_one_hots(self):
        m = self.proj_model()
        fam = SolveFamily()
        fix = fam._project_incumbent(m, {"t": 18.0, "x": 4.0})
        assert fix["t"] == 16.0
        sos = next(iter(m.sos1_sets.values()))
        chosen = {mem: fix[mem] for mem in sos.members}
        assert sorted(chosen.values()) == [0.0, 0.0, 1.0]
        assert chosen[sos.members[list(sos.weights).index(16.0)]] == 1.0

    def test_integer_rounds_and_clamps(self):
        m = self.proj_model()
        fam = SolveFamily()
        assert fam._project_incumbent(m, {"t": 8.0, "x": 25.3})["x"] == 10.0
        assert fam._project_incumbent(m, {"t": 8.0, "x": 3.6})["x"] == 4.0

    def test_missing_value_rejects_unless_fixed(self):
        m = self.proj_model()
        fam = SolveFamily()
        assert fam._project_incumbent(m, {"t": 8.0}) is None
        m2 = Model("fixed")
        m2.add_variable("x", VarType.INTEGER, 7, 7)
        assert SolveFamily()._project_incumbent(m2, {})["x"] == 7.0

    def test_missing_sos_target_rejects(self):
        m = self.proj_model()
        assert SolveFamily()._project_incumbent(m, {"x": 1.0}) is None


class TestSnapshotAndDeltas:
    def test_snapshot_is_independent(self):
        fam = SolveFamily()
        fam.absorb(new_cuts=[("tag", cut({"x": 1.0}, 1.0))])
        snap = fam.snapshot()
        snap.absorb(new_cuts=[("tag", cut({"x": 1.0}, 2.0))])
        assert fam.num_cuts == 1 and snap.num_cuts == 2

    def test_delta_roundtrip(self):
        src = SolveFamily()
        src.absorb(new_cuts=[("tag", cut({"x": 1.0}, 1.0))])
        mark = src.mark()
        channel = frozenset({"tag"})
        src.absorb(
            channel=channel,
            new_cuts=[("tag", cut({"x": 1.0}, 2.0))],
            incumbent_env={"x": 3.0},
            objective=9.0,
            pseudo=({("x", "up"): 1.5}, {("x", "up"): 2}),
            counters={"nodes_seeded": 1},
        )
        delta = src.export_delta(mark)
        assert len(delta.cuts) == 1        # only the post-mark cut
        assert delta.incumbents[channel] == ({"x": 3.0}, 9.0)
        assert delta.pc_count[channel] == {("x", "up"): 2}
        assert delta.counters == {"nodes_seeded": 1}

        dst = SolveFamily()
        dst.absorb(new_cuts=[("tag", cut({"x": 1.0}, 1.0))])
        dst.merge_delta(delta)
        assert dst.num_cuts == 2
        assert dst._incumbents[channel] == ({"x": 3.0}, 9.0)
        assert dst._pc_sum[channel] == {("x", "up"): 1.5}
        assert dst.counters["nodes_seeded"] == 1

    def test_merge_dedupes_shared_cuts(self):
        src = SolveFamily()
        mark = src.mark()
        src.absorb(new_cuts=[("tag", cut({"x": 1.0}, 1.0))])
        delta = src.export_delta(mark)
        dst = SolveFamily()
        dst.absorb(new_cuts=[("tag", cut({"x": 1.0}, 1.0))])
        dst.merge_delta(delta)
        assert dst.num_cuts == 1
        assert dst.counters["cuts_deduped"] == 1

    def test_unchanged_incumbent_not_exported(self):
        fam = SolveFamily()
        channel = frozenset({"tag"})
        fam.absorb(channel=channel, incumbent_env={"x": 1.0}, objective=5.0)
        mark = fam.mark()
        assert fam.export_delta(mark).incumbents == {}


class TestFamilyMap:
    def specs(self, sizes=(64, 56, 48)):
        return layout_point_specs(
            PERF, BOUNDS, sizes, layout=Layout.HYBRID,
            ocn_allowed=OCN_ALLOWED, method="lpnlp",
        )

    @staticmethod
    def signature(points):
        return [
            (p.total_nodes, p.makespan.hex(), tuple(sorted((c.value, n) for c, n in p.allocation.items())),
             p.solver_result.nodes)
            for p in points
        ]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_match_serial(self, backend):
        ref_family = SolveFamily()
        ref = family_map(_solve_layout_point, self.specs(), family=ref_family)
        got_family = SolveFamily()
        got = family_map(
            _solve_layout_point, self.specs(), family=got_family,
            executor=backend, workers=2,
        )
        assert self.signature(got) == self.signature(ref)
        assert got_family.stats() == ref_family.stats()

    def test_no_family_is_plain_map(self):
        ref = [_solve_layout_point(s, None) for s in self.specs()]
        got = family_map(_solve_layout_point, self.specs(), family=None)
        assert self.signature(got) == self.signature(ref)

    def test_empty_items(self):
        assert family_map(_solve_layout_point, [], family=SolveFamily()) == []

    def test_single_item_runs_live(self):
        fam = SolveFamily()
        out = family_map(_solve_layout_point, self.specs((64,)), family=fam)
        assert len(out) == 1
        assert fam.num_cuts > 0 or fam.stats()["incumbents"] > 0
