"""Root FBBT presolve (repro.reuse.fbbt).

Safety contract: overrides only ever tighten, integral boxes round inward,
and a proven-infeasible row returns *empty* overrides — the solver still
runs and derives infeasibility through its own machinery.
"""

from repro.cesm import ComponentId, Layout
from repro.expr.node import const, var
from repro.fitting import PerfModel
from repro.hslb import build_layout_model
from repro.minlp.lpnlp import solve_lpnlp
from repro.model.constraint import Sense
from repro.model.model import Model
from repro.model.variable import VarType
from repro.reuse.fbbt import fbbt_root_bounds

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

PERF = {
    I: PerfModel(a=8000.0, d=18.0),
    L: PerfModel(a=1465.0, d=2.6),
    A: PerfModel(a=27000.0, d=45.0),
    O: PerfModel(a=7900.0, b=0.02, c=1.0, d=36.0),
}
BOUNDS = {I: (8, 2048), L: (4, 2048), A: (8, 2048), O: (8, 2048)}


class TestSmallModels:
    def test_linear_row_tightens_box(self):
        m = Model("t")
        m.add_variable("x", VarType.INTEGER, 0, 10)
        m.add_constraint("cap", var("x"), Sense.LE, 3)
        res = fbbt_root_bounds(m)
        assert res.infeasible_row is None
        assert res.bounds["x"] == (0.0, 3.0)
        assert res.tightenings >= 1

    def test_integral_rounding_floors_fractional_cap(self):
        m = Model("t")
        m.add_variable("x", VarType.INTEGER, 0, 10)
        m.add_constraint("cap", const(2.0) * var("x"), Sense.LE, 5)
        res = fbbt_root_bounds(m)
        assert res.bounds["x"] == (0.0, 2.0)

    def test_continuous_box_keeps_inflation(self):
        m = Model("t")
        m.add_variable("x", VarType.CONTINUOUS, 0, 10)
        m.add_constraint("cap", var("x"), Sense.LE, 3)
        res = fbbt_root_bounds(m)
        lo, hi = res.bounds["x"]
        assert lo == 0.0 and 3.0 <= hi <= 3.0 + 1e-6

    def test_no_tightening_returns_empty(self):
        m = Model("t")
        m.add_variable("x", VarType.INTEGER, 0, 3)
        m.add_constraint("cap", var("x"), Sense.LE, 3)
        res = fbbt_root_bounds(m)
        assert res.bounds == {}

    def test_infeasible_row_is_informational(self):
        m = Model("t")
        m.add_variable("x", VarType.INTEGER, 0, 10)
        m.add_constraint("floor", var("x"), Sense.GE, 20)
        res = fbbt_root_bounds(m)
        assert res.infeasible_row == "floor"
        assert res.bounds == {}

    def test_fixpoint_chains_across_rows(self):
        # x <= 3 and y <= x must propagate into y's box too.
        m = Model("t")
        m.add_variable("x", VarType.INTEGER, 0, 100)
        m.add_variable("y", VarType.INTEGER, 0, 100)
        m.add_constraint("cap", var("x"), Sense.LE, 3)
        m.add_constraint("link", var("y") - var("x"), Sense.LE, 0)
        res = fbbt_root_bounds(m)
        assert res.bounds["x"] == (0.0, 3.0)
        assert res.bounds["y"] == (0.0, 3.0)

    def test_round_limit_respected(self):
        m = Model("t")
        m.add_variable("x", VarType.INTEGER, 0, 100)
        m.add_constraint("cap", var("x"), Sense.LE, 3)
        res = fbbt_root_bounds(m, max_rounds=1)
        assert res.rounds == 1


class TestLayoutModels:
    def layout_model(self, layout=Layout.HYBRID):
        return build_layout_model(
            layout, 64, PERF, BOUNDS, ocn_allowed=[8, 16, 24, 32]
        )

    def test_only_tightens(self):
        model = self.layout_model()
        res = fbbt_root_bounds(model)
        assert res.infeasible_row is None
        assert res.bounds  # the node-total row always bites
        for name, (lo, hi) in res.bounds.items():
            v = model.variables[name]
            assert lo >= v.lb and hi <= v.ub
            assert lo <= hi

    def test_optimum_survives_tightening(self):
        # The bit-identity guarantee reduces to: no override may cut off
        # the optimal point a cold solve finds.
        model = self.layout_model()
        result = solve_lpnlp(model)
        assert result.solution is not None
        res = fbbt_root_bounds(self.layout_model())
        for name, (lo, hi) in res.bounds.items():
            val = result.solution[name]
            assert lo - 1e-9 <= val <= hi + 1e-9, name

    def test_all_three_layouts_sound(self):
        for layout in (
            Layout.HYBRID, Layout.SEQUENTIAL_SPLIT, Layout.FULLY_SEQUENTIAL
        ):
            res = fbbt_root_bounds(self.layout_model(layout))
            assert res.infeasible_row is None
            assert res.rounds >= 1
