"""Interval arithmetic and HC4 revise (repro.reuse.interval).

The FBBT presolve's soundness rests on these primitives never cutting off
a feasible point: conservative widening on case splits, and the SAFETY
inflation on every backward narrowing.
"""

import math

import pytest

from repro.expr.node import const, var
from repro.reuse.interval import (
    FULL,
    EmptyIntervalError,
    forward_eval,
    hc4_revise,
    iadd,
    idiv,
    imul,
    ineg,
    intersect,
    ipow_const,
    isub,
)

INF = math.inf


class TestElementaryOps:
    def test_add_sub_neg(self):
        assert iadd((1.0, 2.0), (10.0, 20.0)) == (11.0, 22.0)
        assert isub((1.0, 2.0), (10.0, 20.0)) == (-19.0, -8.0)
        assert ineg((-3.0, 5.0)) == (-5.0, 3.0)

    def test_mul_corners(self):
        assert imul((-2.0, 3.0), (-1.0, 4.0)) == (-8.0, 12.0)
        assert imul((2.0, 3.0), (4.0, 5.0)) == (8.0, 15.0)

    def test_mul_zero_annihilates_infinity(self):
        # The 0 * inf = 0 bound convention: a zero factor kills the term.
        assert imul((0.0, 0.0), FULL) == (0.0, 0.0)
        assert imul((0.0, 1.0), (0.0, INF)) == (0.0, INF)

    def test_div_plain(self):
        assert idiv((6.0, 12.0), (2.0, 3.0)) == (2.0, 6.0)
        assert idiv((-6.0, 6.0), (2.0, 3.0)) == (-3.0, 3.0)

    def test_div_through_zero_widens(self):
        assert idiv((1.0, 2.0), (-1.0, 1.0)) == FULL
        assert idiv((1.0, 2.0), (0.0, 1.0)) == FULL
        assert idiv((1.0, 2.0), FULL) == FULL

    def test_div_by_infinite_end(self):
        lo, hi = idiv((1.0, 2.0), (1.0, INF))
        assert lo == 0.0 and hi == 2.0


class TestPowConst:
    def test_zero_exponent(self):
        assert ipow_const((-5.0, 5.0), 0.0) == (1.0, 1.0)

    def test_positive_base(self):
        assert ipow_const((2.0, 3.0), 2.0) == (4.0, 9.0)
        # negative exponent is decreasing on (0, inf)
        assert ipow_const((2.0, 4.0), -1.0) == (0.25, 0.5)

    def test_pole_at_zero(self):
        lo, hi = ipow_const((0.0, 4.0), -1.0)
        assert lo == 0.25 and hi == INF

    def test_even_power_of_sign_change(self):
        assert ipow_const((-3.0, 2.0), 2.0) == (0.0, 9.0)

    def test_odd_power_of_sign_change(self):
        assert ipow_const((-2.0, 3.0), 3.0) == (-8.0, 27.0)

    def test_fractional_power_of_negative_base_widens(self):
        assert ipow_const((-1.0, 4.0), 0.5) == FULL

    def test_negative_power_spanning_pole_widens(self):
        assert ipow_const((-1.0, 1.0), -2.0) == FULL

    def test_negative_base_negative_exponent(self):
        assert ipow_const((-4.0, -2.0), -2.0) == (0.0625, 0.25)


class TestIntersect:
    def test_plain(self):
        assert intersect((0.0, 10.0), (5.0, 20.0)) == (5.0, 10.0)

    def test_empty_raises(self):
        with pytest.raises(EmptyIntervalError):
            intersect((0.0, 1.0), (2.0, 3.0))

    def test_tolerance_keeps_crossing_band(self):
        lo, hi = intersect((0.0, 1.0), (1.0 + 1e-12, 2.0), tol=1e-9)
        assert lo <= hi


class TestForwardEval:
    def test_polynomial(self):
        expr = var("x") ** 2 + const(3.0) * var("y")
        boxes = {"x": (-2.0, 1.0), "y": (0.0, 2.0)}
        assert forward_eval(expr, boxes) == (0.0, 10.0)

    def test_missing_variable_is_unbounded(self):
        assert forward_eval(var("ghost"), {}) == FULL

    def test_division(self):
        expr = var("x") / var("y")
        assert forward_eval(expr, {"x": (4.0, 8.0), "y": (2.0, 4.0)}) == (1.0, 4.0)

    def test_scaling_law_shape(self):
        # a/n + d: the paper's basic component curve is monotone in n.
        expr = const(100.0) / var("n") + const(2.0)
        lo, hi = forward_eval(expr, {"n": (10.0, 100.0)})
        assert lo == pytest.approx(3.0) and hi == pytest.approx(12.0)


class TestHC4Revise:
    def test_linear_row_narrows(self):
        # x + y <= 0 with y >= 2 forces x <= -2 (up to inflation).
        expr = var("x") + var("y")
        boxes = {"x": (-10.0, 10.0), "y": (2.0, 5.0)}
        assert hc4_revise(expr, boxes, (-INF, 0.0))
        lo, hi = boxes["x"]
        assert lo == -10.0
        assert -2.0 <= hi <= -2.0 + 1e-6

    def test_narrowing_never_cuts_feasible_points(self):
        # the true range of x under x**2 <= 4 is [-2, 2]; inflation must
        # keep at least that.
        expr = var("x") ** 2 - const(4.0)
        boxes = {"x": (0.0, 10.0)}
        hc4_revise(expr, boxes, (-INF, 0.0))
        lo, hi = boxes["x"]
        assert lo <= 0.0 and hi >= 2.0
        assert hi <= 2.0 * (1.0 + 1e-6)

    def test_infeasible_row_raises(self):
        expr = var("x")
        with pytest.raises(EmptyIntervalError):
            hc4_revise(expr, {"x": (2.0, 3.0)}, (-INF, 0.0))

    def test_no_change_returns_false(self):
        expr = var("x")
        boxes = {"x": (-1.0, -0.5)}
        assert not hc4_revise(expr, boxes, (-INF, 0.0))
        assert boxes == {"x": (-1.0, -0.5)}

    def test_descends_through_product(self):
        # 2*x <= 6 -> x <= 3 (inflated)
        expr = const(2.0) * var("x") - const(6.0)
        boxes = {"x": (0.0, 100.0)}
        assert hc4_revise(expr, boxes, (-INF, 0.0))
        assert 3.0 <= boxes["x"][1] <= 3.0 + 1e-6
