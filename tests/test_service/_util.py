"""Shared helpers for the service test battery."""

from repro.analysis.whatif import _solve_layout_point, layout_point_specs
from repro.cesm import ComponentId
from repro.service.engine import point_result_payload

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


def point_specs(calibrated, sizes, method="lpnlp", case=None):
    """The service-request spec ladder for ``sizes`` on the calibrated case."""
    perf, bounds, default_case = calibrated
    case = default_case if case is None else case
    return layout_point_specs(
        perf, bounds, sizes,
        layout=case.layout,
        ocn_allowed=case.ocean_allowed(),
        atm_allowed=case.atm_allowed(),
        method=method,
    )


def request_for(spec, id="", **extra):
    return {"kind": "solve_point", "spec": spec.to_dict(), "id": id, **extra}


def direct_payload(spec, family):
    """What a direct library solve of ``spec`` answers, as a service payload."""
    return point_result_payload(spec, _solve_layout_point(spec, family))


def assert_bit_identical(got, want, nodes=True):
    """Service payload == direct payload, down to float bits.

    JSON round-trips floats exactly, so comparing payload fields compares
    bits.  ``nodes=False`` relaxes to the reuse *answer* contract
    (objective + allocation identical; tree size may differ).
    """
    assert float(got["objective"]).hex() == float(want["objective"]).hex()
    assert got["allocation"] == want["allocation"]
    assert got["total_nodes"] == want["total_nodes"]
    if nodes:
        assert got.get("solver") == want.get("solver")
