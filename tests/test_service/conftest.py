import pytest

from repro.cesm import ComponentId, make_case
from repro.hslb import HSLBPipeline

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


@pytest.fixture(scope="package")
def calibrated():
    """Fitted 1-degree curves + bounds + the case (seed 0), shared by the
    whole service battery — every test derives its request specs from the
    same calibration, so cross-file comparisons are apples to apples."""
    case = make_case("1deg", 128, seed=0)
    pipeline = HSLBPipeline(case)
    fits = pipeline.fit(pipeline.gather())
    perf = {c: f.model for c, f in fits.items()}
    bounds = {c: case.component_bounds(c) for c in (A, O, I, L)}
    return perf, bounds, case
