"""Satellite 2: property tests for request batching (hypothesis).

Two families of properties:

1. **Grouping** — :func:`group_compatible` is a true partition: every
   group is homogeneous in its compat key, ``None``-keyed items are never
   co-batched with anything, arrival order is preserved within and
   across groups.  Checked over arbitrary key sequences.

2. **Batch semantics** — for any multiset of requests drawn from a
   compatible ladder, in any arrival order: solving them as ONE batched
   family solve answers every request with the same bits as a fresh
   direct solve of its spec (batch members solve against clones of the
   pre-batch snapshot, so ordering is unobservable), and the same
   *answers* (objective + allocation) as handling them one at a time
   (where later requests ride warm state, so only the reuse answer
   contract binds the tree).  Requests with different solver methods are
   never co-batched, and a batch never invokes the solver twice for the
   same spec_key.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.reuse import SolveFamily
from repro.service import ServiceEngine, group_compatible
from tests.test_service._util import direct_payload, point_specs, request_for

SIZES = (128, 120, 112)

BATCH_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def ladder(calibrated):
    return point_specs(calibrated, SIZES)


@pytest.fixture(scope="module")
def mixed(calibrated):
    """Compatible lpnlp ladder + an incompatible bnb spec at each size."""
    return {
        "lpnlp": point_specs(calibrated, SIZES),
        "bnb": point_specs(calibrated, SIZES, method="bnb"),
    }


_reference = {}


def reference_payload(spec):
    """A fresh-family direct solve of ``spec`` (memoized across examples)."""
    key = spec.spec_key()
    if key not in _reference:
        _reference[key] = direct_payload(spec, SolveFamily())
    return _reference[key]


class TestGroupingProperties:
    @given(keys=st.lists(
        st.one_of(st.none(), st.sampled_from("abc")), max_size=12,
    ))
    def test_partition_laws(self, keys):
        items = list(enumerate(keys))
        groups = group_compatible(items, compat=lambda it: it[1])
        # a true partition: nothing lost, nothing duplicated
        flat = [item for group in groups for item in group]
        assert sorted(flat) == sorted(items)
        for group in groups:
            group_keys = {key for _, key in group}
            # homogeneous, and None-keyed items are always alone
            assert len(group_keys) == 1
            if group_keys == {None}:
                assert len(group) == 1
            # arrival order preserved within the group
            assert [i for i, _ in group] == sorted(i for i, _ in group)
        # groups ordered by their earliest member
        firsts = [group[0][0] for group in groups]
        assert firsts == sorted(firsts)


class TestBatchSemantics:
    @given(order=st.permutations(range(len(SIZES))))
    @BATCH_SETTINGS
    def test_batched_equals_one_at_a_time_any_order(self, ladder, order):
        requests = [request_for(ladder[i], id=f"r{pos}")
                    for pos, i in enumerate(order)]

        batch_engine = ServiceEngine()
        batched = batch_engine.solve_group(
            [batch_engine.parse(r) for r in requests])

        single_engine = ServiceEngine()
        singles = [single_engine.handle(r) for r in requests]

        for pos, i in enumerate(order):
            want = reference_payload(ladder[i])
            assert batched[pos].id == singles[pos].id == f"r{pos}"
            assert batched[pos].ok and singles[pos].ok
            # batch members see the pre-batch (empty) snapshot: full
            # payloads are bit-identical to a fresh direct solve
            assert batched[pos].result == want
            # one-at-a-time rides warm state: the answer contract binds
            got = singles[pos].result
            assert float(got["objective"]).hex() == \
                float(want["objective"]).hex()
            assert got["allocation"] == want["allocation"]

    @given(picks=st.lists(st.sampled_from(range(len(SIZES))),
                          min_size=1, max_size=5))
    @BATCH_SETTINGS
    def test_duplicates_answered_identically_solver_run_once(self, ladder, picks):
        engine = ServiceEngine()
        responses = engine.solve_group(
            [engine.parse(request_for(ladder[i], id=f"r{pos}"))
             for pos, i in enumerate(picks)])
        for pos, i in enumerate(picks):
            assert responses[pos].ok
            assert responses[pos].result == reference_payload(ladder[i])
        counters = engine.stats()["counters"]
        assert counters["cold_solves"] == len(set(picks))
        assert counters["dedup_hits"] == len(picks) - len(set(picks))

    @given(draw=st.lists(
        st.tuples(st.sampled_from(("lpnlp", "bnb")),
                  st.sampled_from(range(len(SIZES)))),
        min_size=1, max_size=6,
    ))
    @BATCH_SETTINGS
    def test_incompatible_methods_never_co_batched(self, mixed, draw):
        engine = ServiceEngine()
        parsed = [engine.parse(request_for(mixed[method][i], id=f"r{pos}"))
                  for pos, (method, i) in enumerate(draw)]
        groups = group_compatible(parsed)
        methods_seen = []
        for group in groups:
            group_methods = {p.spec.method for p in group}
            assert len(group_methods) == 1
            methods_seen.append(group_methods.pop())
        assert len(groups) == len({m for m, _ in draw})
        # and solving the groups still answers every request correctly
        responses = {}
        for group in groups:
            for parsed_req, response in zip(group, engine.solve_group(group)):
                responses[parsed_req.id] = (parsed_req, response)
        assert len(responses) == len(draw)
        for pos, (method, i) in enumerate(draw):
            _, response = responses[f"r{pos}"]
            assert response.ok
            got, want = response.result, reference_payload(mixed[method][i])
            assert float(got["objective"]).hex() == \
                float(want["objective"]).hex()
            assert got["allocation"] == want["allocation"]
