"""Tiered cache mechanics: exact LRU and warm family pools."""

import pytest

from repro.exceptions import ConfigurationError
from repro.resilience.events import EventKind, EventLog
from repro.reuse import SolveFamily
from repro.service import ExactCache, WarmPools


class TestExactCache:
    def test_miss_then_hit(self):
        cache = ExactCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", {"v": 1})
        assert cache.get("a") == {"v": 1}
        assert cache.stats() == {
            "entries": 1, "capacity": 4, "hits": 1, "misses": 1, "evictions": 0,
        }

    def test_lru_eviction_order(self):
        cache = ExactCache(capacity=2)
        cache.put("a", {})
        cache.put("b", {})
        assert cache.get("a") is not None   # refresh a; b is now oldest
        cache.put("c", {})
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats()["evictions"] == 1

    def test_put_refreshes_existing_key(self):
        cache = ExactCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {})
        cache.put("a", {"v": 2})            # refresh, not a new entry
        cache.put("c", {})                  # evicts b, not a
        assert cache.get("a") == {"v": 2}
        assert "b" not in cache

    def test_len(self):
        cache = ExactCache(capacity=8)
        for key in "abc":
            cache.put(key, {})
        assert len(cache) == 3

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            ExactCache(capacity=0)


class TestWarmPools:
    def test_first_lease_is_cold(self):
        pools = WarmPools(capacity=4)
        family, warm = pools.lease("ch", 128)
        assert isinstance(family, SolveFamily)
        assert not warm

    def test_lease_after_solve_is_warm_and_same_family(self):
        pools = WarmPools(capacity=4)
        family, _ = pools.lease("ch", 128)
        pools.note_solved("ch")
        again, warm = pools.lease("ch", 120)
        assert again is family
        assert warm

    def test_channels_are_independent(self):
        pools = WarmPools(capacity=4)
        fam_a, _ = pools.lease("a", 128)
        pools.note_solved("a")
        fam_b, warm_b = pools.lease("b", 128)
        assert fam_b is not fam_a
        assert not warm_b

    def test_lru_eviction_records_event(self):
        events = EventLog()
        pools = WarmPools(capacity=2, events=events)
        pools.lease("a", 10)
        pools.lease("b", 10)
        pools.lease("a", 10)                # refresh a; b is oldest
        pools.lease("c", 10)                # evicts b
        assert "b" not in pools
        assert "a" in pools and "c" in pools
        assert pools.stats()["evictions"] == 1
        assert len(events.of_kind(EventKind.WARM_POOL_EVICTED)) == 1

    def test_wide_spread_downgrades_to_safe_subset(self):
        events = EventLog()
        pools = WarmPools(capacity=4, events=events)
        family, _ = pools.lease("ch", 100)
        assert family.enable_cuts and family.enable_pseudocosts
        # within the spread guard: everything stays on
        pools.lease("ch", 110)
        assert family.enable_cuts
        # beyond PSEUDOCOST_SPREAD (1.2x): unsafe channels flip off for good
        pools.lease("ch", 1000)
        assert not family.enable_cuts
        assert not family.enable_pseudocosts
        assert not family.enable_fbbt
        assert family.enable_incumbent and family.enable_basis
        assert pools.stats()["downgrades"] == 1
        assert len(events.of_kind(EventKind.WARM_POOL_DOWNGRADED)) == 1
        # already downgraded: widening further is not a second event
        pools.lease("ch", 5000)
        assert pools.stats()["downgrades"] == 1

    def test_solves_counted_in_stats(self):
        pools = WarmPools(capacity=4)
        pools.lease("a", 10)
        pools.note_solved("a", 3)
        pools.lease("b", 10)
        pools.note_solved("b")
        assert pools.stats()["solves"] == 4
        assert len(pools) == 2

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            WarmPools(capacity=0)
