"""Satellite 3: the service under deterministic chaos.

The supervised backend's contract, exercised end to end through the
engine (and once through a real socket):

- a worker SIGKILL'd mid-request is respawned and the request is still
  answered — bit-identical to a clean direct solve;
- a request whose every attempt dies comes back as a typed ``poisoned``
  response, and its batch-mates are untouched (per-request isolation);
- a hung worker is detected by the task deadline and poisoned — the
  service never waits out the hang;
- the clean path (inactive chaos profile) stays bit-identical to the
  serial backend.

Kill patterns are deterministic: :meth:`ChaosProfile.ticket` is a pure
function of ``(seed, task index, attempt)``, so tests *scan* for a seed
matching the pattern they need instead of hoping.  ``REPRO_CHAOS_SEEDS``
offsets the scan so the dedicated CI job replays different concrete
kill-matrices.
"""

import os
import time

import pytest

from repro.resilience.chaos import ChaosProfile
from repro.resilience.events import EventKind, EventLog
from repro.reuse import SolveFamily
from repro.service import ServiceConfig, ServiceEngine, serve_in_thread
from tests.test_service._util import (
    assert_bit_identical,
    direct_payload,
    point_specs,
    request_for,
)

pytestmark = pytest.mark.chaos

SEEDS = [int(s) for s in os.environ.get("REPRO_CHAOS_SEEDS", "0").split(",")]

KILL_HALF = ChaosProfile(kill_probability=0.5)
KILL_ALWAYS = ChaosProfile(kill_probability=1.0)


def find_seed(pattern, start=0, limit=10_000):
    """The first seed >= ``start`` whose kill-matrix matches ``pattern``."""
    for seed in range(start, start + limit):
        if pattern(seed):
            return seed
    raise AssertionError("no chaos seed matches the requested pattern")


def chaos_engine(events=None, **overrides):
    kwargs = dict(backend="supervised", workers=1, max_retries=4)
    kwargs.update(overrides)
    return ServiceEngine(ServiceConfig(**kwargs), events=events)


_direct = {}


def direct_for(spec):
    key = spec.spec_key()
    if key not in _direct:
        _direct[key] = direct_payload(spec, SolveFamily())
    return _direct[key]


class TestCrashRecovery:
    @pytest.mark.parametrize("base", SEEDS)
    def test_killed_worker_respawns_and_still_answers(self, calibrated, base):
        """Attempt 1 is SIGKILL'd, attempt 2 is clean: the request must be
        answered ok, bit-identical, with crash + respawn on the record."""
        spec = point_specs(calibrated, (128,))[0]
        seed = find_seed(
            lambda s: (KILL_HALF.ticket(s, 0, 1) == ("kill",)
                       and KILL_HALF.ticket(s, 0, 2) is None),
            start=10_000 * base,
        )
        events = EventLog()
        engine = chaos_engine(events, chaos=KILL_HALF, seed=seed)
        try:
            response = engine.handle(request_for(spec, id="r"))
            stats = engine.stats()
        finally:
            engine.shutdown()

        assert response.ok and response.tier == "cold"
        assert_bit_identical(response.result, direct_for(spec))
        assert stats["supervision"]["crashes"] >= 1
        assert stats["supervision"]["respawns"] >= 1
        assert stats["supervision"]["retries"] >= 1
        assert stats["supervision"]["poisoned"] == 0
        assert len(events.of_kind(EventKind.WORKER_CRASH)) >= 1
        assert len(events.of_kind(EventKind.WORKER_RESPAWN)) >= 1

    @pytest.mark.parametrize("base", SEEDS)
    def test_poisoned_member_isolated_from_batch_mates(self, calibrated, base):
        """With a one-attempt budget, the task whose dispatch is killed is
        quarantined as a typed poison while its batch-mate answers clean."""
        specs = point_specs(calibrated, (128, 120))
        # task 0 is the largest budget (descending batch order) -> killed;
        # task 1 survives its only attempt.
        seed = find_seed(
            lambda s: (KILL_HALF.ticket(s, 0, 1) == ("kill",)
                       and KILL_HALF.ticket(s, 1, 1) is None),
            start=10_000 * base,
        )
        events = EventLog()
        engine = chaos_engine(events, workers=2, max_retries=1,
                              chaos=KILL_HALF, seed=seed)
        try:
            group = [engine.parse(request_for(specs[0], id="big")),
                     engine.parse(request_for(specs[1], id="small"))]
            responses = {r.id: r for r in engine.solve_group(group)}
            counters = engine.stats()["counters"]
        finally:
            engine.shutdown()

        big, small = responses["big"], responses["small"]
        assert big.status == "poisoned"
        assert big.error["type"] == "WorkerCrashError"
        assert big.meta == {"attempts": 1, "reason": "crash"}
        assert small.ok
        assert_bit_identical(small.result, direct_for(specs[1]))
        assert counters["poisoned"] == 1
        assert counters["cold_solves"] == 1
        assert len(events.of_kind(EventKind.TASK_POISONED)) == 1


class TestHangDetection:
    def test_hung_worker_poisoned_not_waited_out(self, calibrated):
        """A worker sleeping 30s against a 0.5s task deadline is killed and
        the request poisoned as a typed hang — promptly."""
        spec = point_specs(calibrated, (128,))[0]
        events = EventLog()
        engine = chaos_engine(
            events, max_retries=1, task_deadline=0.5,
            chaos=ChaosProfile(hang_probability=1.0, hang_seconds=30.0),
        )
        try:
            start = time.monotonic()
            response = engine.handle(request_for(spec, id="r"))
            elapsed = time.monotonic() - start
        finally:
            engine.shutdown()

        assert response.status == "poisoned"
        assert response.error["type"] == "WorkerHangError"
        assert response.meta["reason"] == "hang"
        assert elapsed < 15.0      # never waits out the 30s sleep
        assert len(events.of_kind(EventKind.WORKER_HANG)) == 1
        assert len(events.of_kind(EventKind.TASK_POISONED)) == 1


class TestPoisonOverTheWire:
    def test_exhausted_retries_reach_the_client_typed(self, calibrated):
        """Every attempt killed: the socket client receives ``poisoned``
        with the attempt count, and the daemon keeps serving."""
        from repro.exceptions import ServiceError

        spec = point_specs(calibrated, (128,))[0]
        config = ServiceConfig(backend="supervised", workers=1,
                               max_retries=2, chaos=KILL_ALWAYS, seed=0)
        with serve_in_thread(config) as handle:
            with handle.client(client_id="t") as client:
                response = client.solve_point(spec)
                assert client.ping().ok            # daemon survived the chaos
        assert response.status == "poisoned"
        assert response.error["type"] == "WorkerCrashError"
        assert response.meta == {"attempts": 2, "reason": "crash"}
        with pytest.raises(ServiceError, match="poisoned"):
            client.result(response)


class TestCleanPath:
    def test_inactive_profile_is_bit_identical_to_serial(self, calibrated):
        """chaos=ChaosProfile() (all rates zero) must not perturb a bit."""
        specs = point_specs(calibrated, (128, 120))
        engine = chaos_engine(workers=2, chaos=ChaosProfile())
        try:
            supervised = [engine.handle(request_for(s, id=f"r{i}"))
                          for i, s in enumerate(specs)]
        finally:
            engine.shutdown()
        serial_engine = ServiceEngine()
        serial = [serial_engine.handle(request_for(s, id=f"r{i}"))
                  for i, s in enumerate(specs)]
        for a, b in zip(supervised, serial):
            assert a.ok and b.ok
            assert a.tier == b.tier
            assert a.result == b.result    # full payload, bit for bit
