"""Opt-in client-side admission retry: only ``rejected``, bounded, deterministic."""

import pytest

from repro import telemetry
from repro.resilience import RetryPolicy
from repro.service.client import ServiceClient
from repro.service.protocol import ServiceResponse
from repro.telemetry import MetricsRegistry, names


def scripted_client(statuses, policy=None, sleeps=None):
    """A ServiceClient with no socket: ``call`` pops scripted responses."""
    client = ServiceClient.__new__(ServiceClient)
    client.client_id = "t"
    client.retry_rejected = policy
    client.retry_seed = 0
    client._counter = 0
    script = list(statuses)
    sent = []

    def call(request):
        sent.append(request)
        status = script.pop(0)
        if status == "ok":
            return ServiceResponse(id=request.id, status="ok", tier="cold",
                                   result={"objective": 1.0})
        return ServiceResponse(id=request.id, status=status,
                               error={"type": "E", "detail": status})

    client.call = call
    return client, sent


def fake_policy(max_attempts, sleeps):
    return RetryPolicy(
        max_attempts=max_attempts, base_delay=0.01, sleep=sleeps.append
    )


class TestDefaultOneShot:
    def test_no_policy_means_no_retry(self):
        client, sent = scripted_client(["rejected", "ok"])
        response = client.solve_point({"fake": "spec"})
        assert response.status == "rejected"
        assert len(sent) == 1


class TestRetryRejected:
    def test_retries_until_accepted(self):
        sleeps = []
        client, sent = scripted_client(
            ["rejected", "rejected", "ok"], fake_policy(4, sleeps))
        response = client.solve_point({"fake": "spec"})
        assert response.status == "ok"
        assert len(sent) == 3
        assert len(sleeps) == 2

    def test_same_request_id_every_attempt(self):
        client, sent = scripted_client(
            ["rejected", "ok"], fake_policy(4, []))
        client.solve_point({"fake": "spec"})
        assert len({request.id for request in sent}) == 1

    def test_gives_up_after_max_attempts(self):
        sleeps = []
        client, sent = scripted_client(
            ["rejected"] * 5, fake_policy(3, sleeps))
        response = client.solve_point({"fake": "spec"})
        assert response.status == "rejected"
        assert len(sent) == 3
        assert len(sleeps) == 2     # no sleep after the final attempt

    @pytest.mark.parametrize("status", ["expired", "error", "poisoned"])
    def test_only_rejected_retries(self, status):
        client, sent = scripted_client([status, "ok"], fake_policy(4, []))
        response = client.solve_point({"fake": "spec"})
        assert response.status == status
        assert len(sent) == 1

    def test_backoff_is_deterministic(self):
        a_sleeps, b_sleeps = [], []
        client_a, _ = scripted_client(
            ["rejected", "rejected", "ok"], fake_policy(4, a_sleeps))
        client_b, _ = scripted_client(
            ["rejected", "rejected", "ok"], fake_policy(4, b_sleeps))
        client_a.solve_point({"fake": "spec"})
        client_b.solve_point({"fake": "spec"})
        assert a_sleeps == b_sleeps
        assert all(delay > 0 for delay in a_sleeps)

    def test_retries_are_counted(self):
        registry = telemetry.enable(MetricsRegistry())
        try:
            client, _ = scripted_client(
                ["rejected", "rejected", "ok"], fake_policy(4, []))
            client.solve_point({"fake": "spec"})
            assert registry.get_count(names.CLIENT_REJECTED_RETRIES) == 2
        finally:
            telemetry.disable()

    def test_tune_requests_also_retry(self):
        client, sent = scripted_client(["rejected", "ok"], fake_policy(4, []))
        response = client.tune({"fake": "spec"})
        assert response.status == "ok"
        assert len(sent) == 2
