"""Satellite 1: service responses are bit-identical to direct solves.

The serving contract, pinned across the Table I layouts, all three cache
tiers and both dispatch backends:

- **cold** responses equal a direct :func:`_solve_layout_point` against a
  fresh :class:`SolveFamily` — objective, allocation, and every solver
  statistic (B&B nodes, cuts, LP iterations) to the bit;
- **warm** responses equal the direct *sequential* comparator (one live
  family threaded through the same solves in the same order) — the
  engine's clone-plus-delta-merge discipline is unobservable;
- **exact** responses are the memoized first payload, verbatim;
- the ``serial`` and ``supervised`` backends produce identical bits;
- warm answers also honor the reuse contract against plain no-family
  cold solves (objective + allocation; only the tree may differ).
"""

import pytest

from repro.cesm import Layout, make_case
from repro.reuse import SolveFamily
from repro.service import ServiceConfig, ServiceEngine
from tests.test_service._util import (
    assert_bit_identical,
    direct_payload,
    point_specs,
    request_for,
)

SIZES = (128, 120)
LAYOUTS = (Layout.HYBRID, Layout.SEQUENTIAL_SPLIT, Layout.FULLY_SEQUENTIAL)


def ladder_for(calibrated, layout, method="lpnlp"):
    case = make_case("1deg", max(SIZES), layout=layout, seed=0)
    return point_specs(calibrated, SIZES, method=method, case=case)


def serve_sequence(engine, specs):
    """One request per spec in order, plus an exact-tier repeat of the first."""
    responses = [engine.handle(request_for(s, id=f"r{i}"))
                 for i, s in enumerate(specs)]
    responses.append(engine.handle(request_for(specs[0], id="repeat")))
    return responses


def direct_sequence(specs):
    """The equivalent direct library calls: one live family, same order."""
    family = SolveFamily()
    return [direct_payload(s, family) for s in specs]


class TestTierDifferential:
    @pytest.mark.parametrize("layout", LAYOUTS, ids=lambda l: f"layout{l.value}")
    def test_all_tiers_bit_identical(self, calibrated, layout):
        specs = ladder_for(calibrated, layout)
        served = serve_sequence(ServiceEngine(), specs)
        direct = direct_sequence(specs)

        cold, warm, exact = served
        assert [r.tier for r in served] == ["cold", "warm", "exact"]
        assert all(r.ok for r in served)
        assert_bit_identical(cold.result, direct[0])
        assert_bit_identical(warm.result, direct[1])
        assert exact.result == cold.result

    def test_bnb_method(self, calibrated):
        specs = ladder_for(calibrated, Layout.HYBRID, method="bnb")
        served = serve_sequence(ServiceEngine(), specs)
        direct = direct_sequence(specs)
        for response, want in zip(served, direct):
            assert_bit_identical(response.result, want)

    def test_warm_honors_reuse_answer_contract(self, calibrated):
        specs = ladder_for(calibrated, Layout.HYBRID)
        warm = serve_sequence(ServiceEngine(), specs)[1]
        plain_cold = direct_payload(specs[1], None)
        assert_bit_identical(warm.result, plain_cold, nodes=False)


class TestBackendDifferential:
    @pytest.mark.parametrize("method", ("lpnlp", "bnb"))
    def test_supervised_matches_serial(self, calibrated, method):
        specs = ladder_for(calibrated, Layout.HYBRID, method=method)
        serial = serve_sequence(ServiceEngine(ServiceConfig()), specs)
        engine = ServiceEngine(ServiceConfig(backend="supervised", workers=2))
        try:
            supervised = serve_sequence(engine, specs)
        finally:
            engine.shutdown()
        assert [r.tier for r in supervised] == [r.tier for r in serial]
        for a, b in zip(supervised, serial):
            assert a.result == b.result    # full payload, bit for bit

    def test_supervised_batch_matches_serial_batch(self, calibrated):
        specs = ladder_for(calibrated, Layout.SEQUENTIAL_SPLIT)
        serial_engine = ServiceEngine()
        serial = serial_engine.solve_group(
            [serial_engine.parse(request_for(s, id=f"r{i}"))
             for i, s in enumerate(specs)]
        )
        engine = ServiceEngine(ServiceConfig(backend="supervised", workers=2))
        try:
            supervised = engine.solve_group(
                [engine.parse(request_for(s, id=f"r{i}"))
                 for i, s in enumerate(specs)]
            )
        finally:
            engine.shutdown()
        for a, b in zip(supervised, serial):
            assert a.ok and b.ok
            assert a.result == b.result
