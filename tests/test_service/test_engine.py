"""ServiceEngine behavior: tiers, dedup, batching semantics, fault typing."""

import pytest

from repro.exceptions import ConfigurationError, ProtocolError
from repro.service import (
    ServiceConfig,
    ServiceEngine,
    ServiceRequest,
    group_compatible,
    reuse_channel,
)
from tests.test_service._util import direct_payload, point_specs, request_for


@pytest.fixture(scope="module")
def specs(calibrated):
    return point_specs(calibrated, (128, 120, 112))


class TestParse:
    def test_solve_point_identities(self, calibrated, specs):
        engine = ServiceEngine()
        parsed = engine.parse(request_for(specs[0], id="r1"))
        assert parsed.id == "r1"
        assert parsed.key == specs[0].spec_key()
        assert parsed.budget == 128
        assert parsed.compat == reuse_channel(specs[0].to_dict())
        assert parsed.channel == parsed.compat

    def test_ladder_shares_a_channel(self, specs):
        engine = ServiceEngine()
        channels = {engine.parse(request_for(s)).compat for s in specs}
        assert len(channels) == 1

    def test_methods_get_distinct_channels(self, calibrated):
        engine = ServiceEngine()
        lp = point_specs(calibrated, (128,), method="lpnlp")[0]
        bnb = point_specs(calibrated, (128,), method="bnb")[0]
        assert (engine.parse(request_for(lp)).compat
                != engine.parse(request_for(bnb)).compat)

    def test_oracle_has_no_family_channel(self, calibrated):
        engine = ServiceEngine()
        oracle = point_specs(calibrated, (128,), method="oracle")[0]
        parsed = engine.parse(request_for(oracle))
        assert parsed.channel is None
        assert parsed.compat is not None    # still batchable with its kin

    def test_control_kinds_not_parseable(self):
        engine = ServiceEngine()
        with pytest.raises(ProtocolError, match="not a solvable"):
            engine.parse(ServiceRequest(kind="ping"))

    def test_bad_spec_payload(self):
        engine = ServiceEngine()
        with pytest.raises(Exception):
            engine.parse(request_for_bad())


def request_for_bad():
    return {"kind": "solve_point", "spec": {"kind": "solve_point",
                                            "problem": {}}, "id": "bad"}


class TestTiers:
    def test_cold_then_exact(self, specs):
        engine = ServiceEngine()
        first = engine.handle(request_for(specs[0], id="a"))
        repeat = engine.handle(request_for(specs[0], id="b"))
        assert first.tier == "cold" and repeat.tier == "exact"
        assert repeat.result == first.result
        assert repeat.id == "b"
        counters = engine.stats()["counters"]
        assert counters["cold_solves"] == 1
        assert counters["exact_hits"] == 1

    def test_warm_on_second_channel_member(self, specs):
        engine = ServiceEngine()
        assert engine.handle(request_for(specs[0])).tier == "cold"
        warm = engine.handle(request_for(specs[1]))
        assert warm.tier == "warm"
        assert engine.stats()["counters"]["warm_hits"] == 1
        assert engine.stats()["warm"]["channels"] == 1

    def test_oracle_requests_answered_without_family(self, calibrated):
        engine = ServiceEngine()
        oracle = point_specs(calibrated, (128, 120), method="oracle")
        r0 = engine.handle(request_for(oracle[0]))
        r1 = engine.handle(request_for(oracle[1]))
        assert r0.tier == "cold" and r1.tier == "cold"
        assert "solver" not in r0.result
        assert engine.stats()["warm"]["channels"] == 0


class TestSolveGroup:
    def test_duplicates_deduped(self, specs):
        engine = ServiceEngine()
        group = [engine.parse(request_for(specs[0], id=f"r{i}"))
                 for i in range(3)]
        responses = engine.solve_group(group)
        assert [r.id for r in responses] == ["r0", "r1", "r2"]
        assert all(r.ok for r in responses)
        assert responses[0].result == responses[1].result == responses[2].result
        counters = engine.stats()["counters"]
        assert counters["cold_solves"] == 1
        assert counters["dedup_hits"] == 2

    def test_batch_counters(self, specs):
        engine = ServiceEngine()
        group = [engine.parse(request_for(s, id=s.spec_key()[:12]))
                 for s in specs]
        engine.solve_group(group)
        counters = engine.stats()["counters"]
        assert counters["batches"] == 1
        assert counters["batched_requests"] == 3
        assert counters["cold_solves"] == 3

    def test_exact_recheck_inside_group(self, specs):
        engine = ServiceEngine()
        engine.handle(request_for(specs[0]))
        group = [engine.parse(request_for(specs[0], id="again"))]
        responses = engine.solve_group(group)
        assert responses[0].tier == "exact"

    def test_defective_member_isolated(self, calibrated, specs):
        # A spec whose model cannot be built (N below every lower bound)
        # shares the good spec's channel; its failure must come back as a
        # typed error on ITS response while the good member solves fine.
        bad = point_specs(calibrated, (2,))[0]
        engine = ServiceEngine()
        group = [engine.parse(request_for(specs[0], id="good")),
                 engine.parse(request_for(bad, id="bad"))]
        responses = engine.solve_group(group)
        by_id = {r.id: r for r in responses}
        assert by_id["good"].ok
        assert by_id["good"].result == direct_payload_cached(specs[0])
        assert by_id["bad"].status == "error"
        assert by_id["bad"].error["type"] == "ConfigurationError"
        assert engine.stats()["counters"]["errors"] == 1
        # the poisoned member never touched the family: a follow-up warm
        # solve matches the direct sequential comparator
        follow = engine.handle(request_for(specs[1], id="after"))
        assert follow.ok and follow.tier == "warm"

    def test_empty_group(self):
        assert ServiceEngine().solve_group([]) == []


_direct_cache = {}


def direct_payload_cached(spec):
    from repro.reuse import SolveFamily

    key = spec.spec_key()
    if key not in _direct_cache:
        _direct_cache[key] = direct_payload(spec, SolveFamily())
    return _direct_cache[key]


class TestHandle:
    def test_ping_and_stats(self):
        engine = ServiceEngine()
        assert engine.handle({"kind": "ping", "id": "p"}).result == {"pong": True}
        stats = engine.handle({"kind": "stats"}).result
        assert stats["backend"] == "serial"
        assert "counters" in stats and "exact" in stats and "warm" in stats

    def test_shutdown_refused_in_process(self):
        response = ServiceEngine().handle({"kind": "shutdown"})
        assert response.status == "error"
        assert response.error["type"] == "ProtocolError"

    def test_malformed_request_is_typed(self):
        response = ServiceEngine().handle({"kind": "nope"})
        assert response.status == "error"
        assert response.error["type"] == "ProtocolError"

    def test_bad_spec_is_typed_and_counted(self):
        engine = ServiceEngine()
        response = engine.handle(request_for_bad())
        assert response.status == "error"
        assert engine.stats()["counters"]["errors"] == 1


class TestGroupCompatible:
    def test_orders_and_partitions(self):
        items = [("a", 1), ("b", 2), ("a", 3), (None, 4), ("b", 5), (None, 6)]
        groups = group_compatible(items, compat=lambda it: it[0])
        assert groups == [
            [("a", 1), ("a", 3)],
            [("b", 2), ("b", 5)],
            [(None, 4)],
            [(None, 6)],
        ]


class TestServiceConfig:
    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="backend"):
            ServiceConfig(backend="gpu")

    @pytest.mark.parametrize("field,value", [
        ("max_queue", 0), ("max_batch", 0), ("max_retries", 0),
        ("exact_capacity", 0), ("warm_capacity", 0),
        ("batch_window", -0.1), ("default_deadline", 0.0),
    ])
    def test_bounds_validated(self, field, value):
        with pytest.raises(ConfigurationError):
            ServiceConfig(**{field: value})
