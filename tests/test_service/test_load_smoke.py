"""Concurrency smoke: many clients hammering one daemon stay consistent.

Not a benchmark (that is ``benchmarks/test_bench_service.py``) — this is
the correctness side of load: under dozens of concurrent connections
drawing from a small spec pool, every response is ``ok``, every response
is bit-identical to the direct solve of its spec, and the daemon's
counters add up exactly.
"""

import threading

import pytest

from repro.reuse import SolveFamily
from repro.service import ServiceConfig, serve_in_thread
from tests.test_service._util import direct_payload, point_specs

CLIENTS = 24
REQUESTS_PER_CLIENT = 10


@pytest.fixture(scope="module")
def pool(calibrated):
    return point_specs(calibrated, (128, 120, 112))


def test_many_clients_consistent_answers(pool):
    want = [direct_payload(s, SolveFamily()) for s in pool]
    results: dict = {}
    failures: list = []

    with serve_in_thread(ServiceConfig(max_queue=256)) as handle:
        def hammer(client_index):
            try:
                with handle.client(client_id=f"c{client_index}") as client:
                    for n in range(REQUESTS_PER_CLIENT):
                        spec_index = (client_index + n) % len(pool)
                        response = client.solve_point(pool[spec_index])
                        results[(client_index, n)] = (spec_index, response)
            except Exception as exc:  # noqa: BLE001 - surfaced by the assert
                failures.append((client_index, repr(exc)))

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        counters = handle.daemon.engine.stats()["counters"]

    assert failures == []
    assert len(results) == CLIENTS * REQUESTS_PER_CLIENT

    tiers = {"exact": 0, "warm": 0, "cold": 0}
    for spec_index, response in results.values():
        assert response.ok, response.to_dict()
        tiers[response.tier] += 1
        # answer contract across every tier: objective + allocation match
        # the direct solve bit for bit
        got = response.result
        assert float(got["objective"]).hex() == \
            float(want[spec_index]["objective"]).hex()
        assert got["allocation"] == want[spec_index]["allocation"]

    total = CLIENTS * REQUESTS_PER_CLIENT
    # counters add up: every request was answered by exactly one tier
    assert counters["requests"] == total
    assert (counters["exact_hits"] + counters["warm_hits"]
            + counters["cold_solves"] + counters["dedup_hits"]) == total
    assert counters["rejected"] == counters["expired"] == 0
    assert counters["errors"] == counters["poisoned"] == 0
    # each unique spec is solved at most a handful of times (only racing
    # batches may re-solve a key); virtually everything is served hot
    assert counters["cold_solves"] + counters["warm_hits"] <= 4 * len(pool)
    assert tiers["exact"] + counters["dedup_hits"] >= total - 4 * len(pool)
