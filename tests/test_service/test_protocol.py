"""Wire-protocol typing: every malformed message is a typed refusal."""

import pytest

from repro.exceptions import ProtocolError
from repro.service import (
    REQUEST_KINDS,
    ServiceRequest,
    ServiceResponse,
    decode_line,
    encode_line,
)
from repro.service.protocol import error_response


class TestLineCodec:
    def test_roundtrip(self):
        payload = {"kind": "ping", "id": "r1", "n": 1.5}
        line = encode_line(payload)
        assert line.endswith(b"\n")
        assert b"\n" not in line[:-1]
        assert decode_line(line) == payload

    def test_accepts_str(self):
        assert decode_line('{"kind":"ping"}') == {"kind": "ping"}

    def test_rejects_bad_utf8(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode_line(b"\xff\xfe{}\n")

    def test_rejects_bad_json(self):
        with pytest.raises(ProtocolError, match="JSON"):
            decode_line(b"{nope\n")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_line(b"[1, 2]\n")


class TestServiceRequest:
    def test_roundtrip(self):
        request = ServiceRequest(
            kind="solve_point", spec={"kind": "solve_point"}, id="r1",
            client="c1", deadline=2.5,
        )
        assert ServiceRequest.from_dict(request.to_dict()) == request

    def test_control_roundtrip_drops_empty_fields(self):
        request = ServiceRequest(kind="ping", id="p")
        out = request.to_dict()
        assert out == {"kind": "ping", "id": "p"}
        assert ServiceRequest.from_dict(out) == request

    def test_unknown_kind(self):
        with pytest.raises(ProtocolError, match="unknown request kind"):
            ServiceRequest(kind="frobnicate")

    def test_solve_kinds_need_spec(self):
        for kind in ("solve_point", "tune"):
            with pytest.raises(ProtocolError, match="needs a 'spec'"):
                ServiceRequest(kind=kind)

    def test_control_kinds_refuse_spec(self):
        with pytest.raises(ProtocolError, match="carries no 'spec'"):
            ServiceRequest(kind="ping", spec={})

    def test_deadline_must_be_positive(self):
        for bad in (0, -1.0):
            with pytest.raises(ProtocolError, match="deadline"):
                ServiceRequest(kind="ping", deadline=bad)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ProtocolError, match="unknown request fields"):
            ServiceRequest.from_dict({"kind": "ping", "surprise": 1})

    def test_from_dict_rejects_non_numeric_deadline(self):
        with pytest.raises(ProtocolError, match="deadline"):
            ServiceRequest.from_dict({"kind": "ping", "deadline": "soon"})

    def test_all_kinds_constructible(self):
        for kind in REQUEST_KINDS:
            spec = {"k": 1} if kind in ("solve_point", "tune") else None
            assert ServiceRequest(kind=kind, spec=spec).kind == kind


class TestServiceResponse:
    def test_roundtrip(self):
        response = ServiceResponse(
            id="r1", status="ok", tier="warm", result={"objective": 1.0},
            meta={"batched": 2},
        )
        assert ServiceResponse.from_dict(response.to_dict()) == response

    def test_unknown_status(self):
        with pytest.raises(ProtocolError, match="unknown response status"):
            ServiceResponse(id="r", status="meh")

    def test_unknown_tier(self):
        with pytest.raises(ProtocolError, match="unknown response tier"):
            ServiceResponse(id="r", status="ok", tier="lukewarm")

    def test_ok_property(self):
        assert ServiceResponse(id="r", status="ok").ok
        for status in ("rejected", "expired", "poisoned", "error"):
            assert not ServiceResponse(id="r", status=status).ok

    def test_error_response_shape(self):
        response = error_response("r9", "rejected", "AdmissionError",
                                  "queue full", in_flight=7)
        assert response.id == "r9"
        assert response.status == "rejected"
        assert response.error == {"type": "AdmissionError",
                                  "detail": "queue full"}
        assert response.meta == {"in_flight": 7}
        assert not response.ok
