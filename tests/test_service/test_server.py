"""Daemon-over-TCP behavior: admission, deadlines, batching, lifecycle.

Everything here goes through a real socket against a daemon on a
background thread (:func:`serve_in_thread`) — the same embedding the CLI
and the benchmark harness use.  The invariants:

- answers through the wire are bit-identical to direct library solves;
- malformed lines get a typed refusal and never wedge the connection;
- admission control rejects (typed, immediate) instead of queueing
  without bound; expired deadlines answer ``expired`` instead of hanging;
- concurrent compatible requests land in one batched family solve;
- ``shutdown`` is honored only when the daemon opted in.
"""

import socket
import threading
import time

import pytest

from repro.exceptions import AdmissionError, DeadlineExceededError
from repro.resilience.events import EventKind, EventLog
from repro.reuse import SolveFamily
from repro.service import ServiceConfig, decode_line, encode_line, serve_in_thread
from tests.test_service._util import (
    assert_bit_identical,
    direct_payload,
    point_specs,
)


@pytest.fixture(scope="module")
def specs(calibrated):
    return point_specs(calibrated, (128, 120))


@pytest.fixture(scope="module")
def direct(specs):
    """Fresh-family direct payloads for each spec (the cold-tier oracle)."""
    return [direct_payload(s, SolveFamily()) for s in specs]


def raw_exchange(address, lines, expect):
    """Write raw request lines on one connection, read ``expect`` responses."""
    host, port = address
    with socket.create_connection((host, port), timeout=30) as sock:
        stream = sock.makefile("rwb")
        for line in lines:
            stream.write(line if isinstance(line, bytes) else encode_line(line))
        stream.flush()
        responses = [decode_line(stream.readline()) for _ in range(expect)]
        stream.close()
    return responses


def wait_for(predicate, timeout=5.0):
    horizon = time.monotonic() + timeout
    while time.monotonic() < horizon:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestControlPlane:
    def test_ping_and_stats_over_socket(self):
        with serve_in_thread(ServiceConfig()) as handle:
            with handle.client(client_id="t") as client:
                assert client.ping().result == {"pong": True}
                stats = client.stats()
                assert stats["backend"] == "serial"
                assert stats["service"]["max_queue"] == 64
                assert stats["service"]["stopping"] is False

    def test_malformed_line_typed_and_connection_survives(self):
        with serve_in_thread(ServiceConfig()) as handle:
            responses = raw_exchange(
                handle.address,
                [b"{nope\n", {"kind": "ping", "id": "after"}],
                expect=2,
            )
            by_id = {r.get("id", ""): r for r in responses}
            assert by_id[""]["status"] == "error"
            assert by_id[""]["error"]["type"] == "ProtocolError"
            assert by_id["after"]["status"] == "ok"
            assert by_id["after"]["result"] == {"pong": True}

    def test_unknown_fields_refused_over_socket(self):
        with serve_in_thread(ServiceConfig()) as handle:
            (response,) = raw_exchange(
                handle.address,
                [{"kind": "ping", "id": "x", "surprise": 1}],
                expect=1,
            )
            assert response["status"] == "error"
            assert response["error"]["type"] == "ProtocolError"


class TestSolvesOverSocket:
    def test_cold_then_exact_bit_identical(self, specs, direct):
        with serve_in_thread(ServiceConfig()) as handle:
            with handle.client(client_id="t") as client:
                cold = client.solve_point(specs[0])
                repeat = client.solve_point(specs[0])
        assert cold.ok and cold.tier == "cold"
        assert_bit_identical(cold.result, direct[0])
        assert repeat.ok and repeat.tier == "exact"
        assert repeat.result == cold.result

    def test_pipelined_requests_matched_by_id(self, specs, direct):
        config = ServiceConfig(batch_window=0.05)
        with serve_in_thread(config) as handle:
            responses = raw_exchange(
                handle.address,
                [
                    {"kind": "solve_point", "spec": specs[0].to_dict(), "id": "a"},
                    {"kind": "solve_point", "spec": specs[1].to_dict(), "id": "b"},
                    {"kind": "ping", "id": "p"},
                ],
                expect=3,
            )
        by_id = {r["id"]: r for r in responses}
        assert set(by_id) == {"a", "b", "p"}
        assert by_id["p"]["result"] == {"pong": True}
        for request_id, want in (("a", direct[0]), ("b", direct[1])):
            assert by_id[request_id]["status"] == "ok"
            assert_bit_identical(by_id[request_id]["result"], want)

    def test_concurrent_compatible_clients_are_batched(self, specs, direct):
        events = EventLog()
        config = ServiceConfig(batch_window=1.0)
        with serve_in_thread(config, events=events) as handle:
            responses = {}

            def ask(index):
                with handle.client(client_id=f"c{index}") as client:
                    responses[index] = client.solve_point(specs[index])

            threads = [threading.Thread(target=ask, args=(i,)) for i in (0, 1)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30)
            counters = handle.daemon.engine.stats()["counters"]

        for index in (0, 1):
            assert responses[index].ok
            # batch members solve against the pre-batch (empty) snapshot:
            # both are bit-identical to fresh direct solves
            assert responses[index].tier == "cold"
            assert_bit_identical(responses[index].result, direct[index])
        assert counters["batches"] == 1
        assert counters["batched_requests"] == 2
        assert len(events.of_kind(EventKind.BATCH_DISPATCHED)) == 1


class TestAdmissionControl:
    def test_overflow_rejected_typed_and_counted(self, specs, direct):
        events = EventLog()
        config = ServiceConfig(max_queue=1, batch_window=1.0)
        with serve_in_thread(config, events=events) as handle:
            first = {}

            def ask():
                with handle.client(client_id="slow") as client:
                    first["response"] = client.solve_point(specs[0])

            thread = threading.Thread(target=ask)
            thread.start()
            with handle.client(client_id="probe") as probe:
                assert wait_for(
                    lambda: probe.stats()["service"]["in_flight"] == 1)
                rejected = probe.solve_point(specs[1])
            thread.join(30)
            counters = handle.daemon.engine.stats()["counters"]

        assert rejected.status == "rejected"
        assert rejected.error["type"] == "AdmissionError"
        assert rejected.meta["in_flight"] == 1
        with pytest.raises(AdmissionError):
            probe.result(rejected)
        assert counters["rejected"] == 1
        assert len(events.of_kind(EventKind.REQUEST_REJECTED)) == 1
        # the admitted request was never disturbed
        assert first["response"].ok
        assert_bit_identical(first["response"].result, direct[0])

    def test_expired_deadline_answered_not_hung(self, specs):
        events = EventLog()
        config = ServiceConfig(batch_window=0.5)
        with serve_in_thread(config, events=events) as handle:
            with handle.client(client_id="t") as client:
                start = time.monotonic()
                expired = client.solve_point(specs[0], deadline=0.001)
                elapsed = time.monotonic() - start
            counters = handle.daemon.engine.stats()["counters"]

        assert expired.status == "expired"
        assert expired.error["type"] == "DeadlineExceededError"
        assert elapsed < 10.0     # answered promptly, never hung
        with pytest.raises(DeadlineExceededError):
            client.result(expired)
        assert counters["expired"] == 1
        assert counters["cold_solves"] == 0   # the solver never ran
        assert len(events.of_kind(EventKind.REQUEST_EXPIRED)) == 1


class TestLifecycle:
    def test_shutdown_refused_by_default(self):
        with serve_in_thread(ServiceConfig()) as handle:
            with handle.client() as client:
                refused = client.shutdown()
                assert refused.status == "error"
                assert refused.error["type"] == "ProtocolError"
                assert client.ping().ok    # daemon is still alive

    def test_shutdown_honored_when_allowed(self):
        handle = serve_in_thread(ServiceConfig(), allow_shutdown=True)
        with handle.client() as client:
            accepted = client.shutdown()
        assert accepted.ok and accepted.result == {"stopping": True}
        handle.thread.join(10)
        assert not handle.thread.is_alive()
        with pytest.raises(OSError):
            socket.create_connection(handle.address, timeout=1)

    def test_stop_is_idempotent(self):
        handle = serve_in_thread(ServiceConfig())
        handle.stop()
        handle.stop()
        assert not handle.thread.is_alive()
