"""Telemetry differential: observing the service never changes its answers.

The acceptance gate for the telemetry layer, run across the Table I
layouts and both dispatch backends:

- with telemetry **disabled** (the default) vs **enabled**, every service
  response — objective, allocation, solver statistics, tier — is
  bit-identical;
- under the supervised backend, fork-started workers ship their metric
  deltas back with each result and the parent folds them in, so the
  merged registry sees the solver work without touching the answers;
- the instrumented run's overhead stays under 5% (asserted strictly only
  when ``REPRO_PERF_STRICT=1`` — the CI perf job — to keep laptop and
  loaded-CI runs from flaking; elsewhere a loose 50% sanity bound).
"""

import os

import pytest

from repro import telemetry
from repro.cesm import Layout, make_case
from repro.service import ServiceConfig, ServiceEngine
from repro.telemetry import MetricsRegistry, monotonic, names
from tests.test_service._util import point_specs, request_for

SIZES = (128, 120)
LAYOUTS = (Layout.HYBRID, Layout.SEQUENTIAL_SPLIT, Layout.FULLY_SEQUENTIAL)


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    telemetry.disable()
    yield
    telemetry.disable()


def ladder_for(calibrated, layout, method="lpnlp"):
    case = make_case("1deg", max(SIZES), layout=layout, seed=0)
    return point_specs(calibrated, SIZES, method=method, case=case)


def serve_sequence(engine, specs):
    """One request per spec, plus an exact-tier repeat of the first."""
    responses = [engine.handle(request_for(s, id=f"r{i}"))
                 for i, s in enumerate(specs)]
    responses.append(engine.handle(request_for(specs[0], id="repeat")))
    return responses


def assert_same_responses(on, off):
    assert [r.tier for r in on] == [r.tier for r in off]
    assert [r.status for r in on] == [r.status for r in off]
    for a, b in zip(on, off):
        assert a.result == b.result    # full payload, bit for bit


class TestSerialDifferential:
    @pytest.mark.parametrize("layout", LAYOUTS, ids=lambda l: f"layout{l.value}")
    def test_enabled_vs_disabled_bit_identical(self, calibrated, layout):
        specs = ladder_for(calibrated, layout)
        telemetry.disable()
        off = serve_sequence(ServiceEngine(), specs)
        registry = telemetry.enable(MetricsRegistry())
        on = serve_sequence(ServiceEngine(), specs)
        assert_same_responses(on, off)
        # The observed run actually recorded the serving work.
        assert registry.counter_total(names.SERVICE_REQUESTS) == len(on)
        assert registry.get_count(names.SERVICE_REQUESTS,
                                  status="ok", tier="exact") == 1
        assert registry.counter_total(names.MINLP_NODES) > 0

    def test_bnb_method(self, calibrated):
        specs = ladder_for(calibrated, Layout.HYBRID, method="bnb")
        telemetry.disable()
        off = serve_sequence(ServiceEngine(), specs)
        telemetry.enable(MetricsRegistry())
        on = serve_sequence(ServiceEngine(), specs)
        assert_same_responses(on, off)


class TestSupervisedDifferential:
    def test_enabled_supervised_matches_disabled_serial(self, calibrated):
        specs = ladder_for(calibrated, Layout.HYBRID)
        telemetry.disable()
        off = serve_sequence(ServiceEngine(), specs)
        registry = telemetry.enable(MetricsRegistry())
        engine = ServiceEngine(ServiceConfig(backend="supervised", workers=2))
        try:
            on = serve_sequence(engine, specs)
        finally:
            engine.shutdown()
        assert_same_responses(on, off)
        # Fork-started workers shipped their per-task deltas home: the
        # parent registry holds solver counts it never recorded locally.
        assert registry.counter_total(names.FLEET_WORKER_DELTAS) > 0
        assert registry.counter_total(names.MINLP_NODES) > 0
        assert registry.counter_total(names.MINLP_SOLVES) > 0


class TestOverhead:
    def test_instrumented_overhead_is_bounded(self, calibrated):
        specs = ladder_for(calibrated, Layout.HYBRID)

        def run():
            t0 = monotonic()
            serve_sequence(ServiceEngine(), specs)
            return monotonic() - t0

        telemetry.disable()
        run()                      # warm the kernel cache out of the measurement
        base = min(run() for _ in range(3))
        telemetry.enable(MetricsRegistry())
        instrumented = min(run() for _ in range(3))
        overhead = instrumented / base - 1.0
        limit = 0.05 if os.environ.get("REPRO_PERF_STRICT") == "1" else 0.50
        assert overhead < limit, (
            f"telemetry overhead {overhead:.1%} exceeds {limit:.0%} "
            f"({instrumented:.3f}s vs {base:.3f}s)"
        )
