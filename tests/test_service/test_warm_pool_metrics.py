"""WarmPools LRU eviction and wide-spread downgrade, cross-checked three ways.

Each lifecycle event has three observers that must agree: the pool's own
counters (``evictions``/``downgrades``), the :class:`EventLog` records the
service surfaces to operators, and the ``WARM_POOL_*`` telemetry metrics.
A disagreement means an instrumentation point drifted off the real event.
"""

import pytest

from repro import telemetry
from repro.resilience import EventLog
from repro.resilience.events import EventKind
from repro.reuse import SolveFamily
from repro.service.cache import WarmPools
from repro.telemetry import MetricsRegistry, names


@pytest.fixture
def registry():
    reg = telemetry.enable(MetricsRegistry())
    yield reg
    telemetry.disable()


class TestLRUEviction:
    def test_eviction_metric_matches_events_and_counter(self, registry):
        events = EventLog()
        pools = WarmPools(capacity=2, events=events)
        for i in range(5):
            pools.lease(f"channel-{i}", total_nodes=128)
        assert len(pools) == 2
        assert pools.evictions == 3
        assert len(events.of_kind(EventKind.WARM_POOL_EVICTED)) == 3
        assert registry.get_count(names.WARM_POOL_EVICTED) == 3

    def test_reuse_keeps_a_channel_alive(self, registry):
        pools = WarmPools(capacity=2, events=EventLog())
        pools.lease("a", 128)
        pools.lease("b", 128)
        pools.lease("a", 128)          # refresh a
        pools.lease("c", 128)          # evicts b, not a
        assert "a" in pools and "c" in pools and "b" not in pools
        assert registry.get_count(names.WARM_POOL_EVICTED) == 1

    def test_lease_tier_labels(self, registry):
        pools = WarmPools(capacity=4)
        pools.lease("a", 128)                       # cold: no solves yet
        pools.note_solved("a")
        pools.lease("a", 128)                       # warm now
        assert registry.get_count(names.WARM_POOL_LEASES, tier="cold") == 1
        assert registry.get_count(names.WARM_POOL_LEASES, tier="warm") == 1


class TestWideSpreadDowngrade:
    def test_downgrade_metric_matches_events_and_counter(self, registry):
        events = EventLog()
        pools = WarmPools(capacity=4, events=events)
        lo = 64
        hi = int(SolveFamily.PSEUDOCOST_SPREAD * lo) + 1
        family, _ = pools.lease("wide", lo)
        assert family.enable_cuts            # narrow so far: full feature set
        pools.lease("wide", hi)              # spread now exceeds the guard
        assert not family.enable_cuts
        assert not family.enable_pseudocosts
        assert not family.enable_fbbt
        assert pools.downgrades == 1
        assert len(events.of_kind(EventKind.WARM_POOL_DOWNGRADED)) == 1
        assert registry.get_count(names.WARM_POOL_DOWNGRADED) == 1

    def test_downgrade_fires_once_per_family(self, registry):
        pools = WarmPools(capacity=4, events=EventLog())
        pools.lease("wide", 64)
        pools.lease("wide", 64 * 100)
        pools.lease("wide", 64 * 1000)       # already downgraded: no re-fire
        assert pools.downgrades == 1
        assert registry.get_count(names.WARM_POOL_DOWNGRADED) == 1

    def test_no_events_log_still_counts_metrics(self, registry):
        pools = WarmPools(capacity=1)
        pools.lease("a", 128)
        pools.lease("b", 128)
        assert registry.get_count(names.WARM_POOL_EVICTED) == 1
