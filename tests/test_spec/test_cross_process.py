"""Cross-process parity: specs shipped to process workers solve identically.

ISSUE acceptance: a what-if sweep fanned out to a process pool ships
*specs* (pure JSON-serializable data rebuilt through the builder
registry), never pickled :class:`~repro.model.Model` objects, and every
worker's solve matches the serial run bit for bit — same makespan, same
allocation, same branch-and-bound node count.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.analysis import layout_point_specs, solve_layout_points
from repro.cesm import ComponentId, Layout, make_case
from repro.hslb import HSLBPipeline
from repro.reuse import SolveFamily
from repro.spec import SolvePointSpec

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

SIZES = (128, 120, 112)


@pytest.fixture(scope="module")
def calibrated():
    case = make_case("1deg", max(SIZES), seed=0)
    pipeline = HSLBPipeline(case)
    fits = pipeline.fit(pipeline.gather())
    perf = {c: f.model for c, f in fits.items()}
    bounds = {c: case.component_bounds(c) for c in (A, O, I, L)}
    return perf, bounds, case.ocean_allowed()


def _assert_points_match(got, ref):
    for g, r in zip(got, ref, strict=True):
        assert g.total_nodes == r.total_nodes
        assert g.makespan.hex() == r.makespan.hex(), r.total_nodes
        assert g.allocation == r.allocation, r.total_nodes
        assert g.solver_result.nodes == r.solver_result.nodes, r.total_nodes


def test_sweep_payload_is_spec_not_model(calibrated):
    """What crosses the pool boundary is data: JSON-safe, model-free."""
    perf, bounds, ocn = calibrated
    specs = layout_point_specs(
        perf, bounds, SIZES, layout=Layout.HYBRID, ocn_allowed=ocn, method="lpnlp"
    )
    for spec in specs:
        assert isinstance(spec, SolvePointSpec)
        payload = spec.to_dict()
        json.dumps(payload, allow_nan=False)  # pure JSON, no live objects
        # Pickling the spec (what the process backend actually sends) is
        # tiny next to pickling a built Model with compiled expressions.
        assert len(pickle.dumps(spec)) < 2_000


@pytest.mark.parallel
def test_process_sweep_node_count_parity(calibrated):
    """Serial vs process-pool sweep: identical results, independent solves."""
    perf, bounds, ocn = calibrated
    kwargs = dict(
        layout=Layout.HYBRID, ocn_allowed=ocn, method="lpnlp", reuse=False
    )
    serial = solve_layout_points(perf, bounds, SIZES, **kwargs)
    shipped = solve_layout_points(
        perf, bounds, SIZES, executor="process", workers=2, **kwargs
    )
    _assert_points_match(shipped, serial)


@pytest.mark.parallel
def test_process_sweep_with_family_matches_serial(calibrated):
    """Reuse on: the family's delta merging keeps process runs bit-identical."""
    perf, bounds, ocn = calibrated
    kwargs = dict(layout=Layout.HYBRID, ocn_allowed=ocn, method="lpnlp")
    serial = solve_layout_points(perf, bounds, SIZES, reuse=SolveFamily(), **kwargs)
    shipped = solve_layout_points(
        perf, bounds, SIZES, reuse=SolveFamily(),
        executor="process", workers=2, **kwargs,
    )
    _assert_points_match(shipped, serial)
