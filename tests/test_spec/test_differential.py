"""Differential battery: spec-built solves are bit-identical to in-memory ones.

The spec subsystem's whole contract (docs/specs.md): for every Table I
layout case, ``solve(build_from_spec(to_spec(problem)))`` matches the
in-memory solve bit for bit — same optimum down to the last float bit
(compared via ``.hex()``), same allocation, same branch-and-bound node
count — including with a :class:`~repro.reuse.SolveFamily` attached and
with ``workers>1`` speculative solving on.  Every spec crosses a real
serialization boundary here (``to_json`` -> ``from_json``) before the
rebuild, so the battery also covers float round-trip fidelity.
"""

from __future__ import annotations

import json

import pytest

from repro.cesm import ComponentId, Layout, make_case
from repro.hslb import (
    HSLBPipeline,
    build_layout_model_from_spec,
    layout_model_for_case,
    layout_problem_spec_for_case,
)
from repro.hslb.layout_models import VAR_NAMES
from repro.minlp import MINLPOptions, solve_lpnlp, solve_nlp_bnb
from repro.reuse import SolveFamily
from repro.spec import LayoutProblemSpec, TuneSpec, spec_from_json

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND

SIZES = (128, 120, 112)
LAYOUTS = (Layout.HYBRID, Layout.SEQUENTIAL_SPLIT, Layout.FULLY_SEQUENTIAL)
SOLVERS = {"lpnlp": solve_lpnlp, "bnb": solve_nlp_bnb}


@pytest.fixture(scope="module")
def calibrated():
    """One fitted 1-degree case reused by the whole battery (seed 0)."""
    case = make_case("1deg", max(SIZES), seed=0)
    pipeline = HSLBPipeline(case)
    fits = pipeline.fit(pipeline.gather())
    return case, fits


def _round_trip(spec: LayoutProblemSpec) -> LayoutProblemSpec:
    """Force a real serialization boundary and check structural identity."""
    shipped = LayoutProblemSpec.from_json(spec.to_json())
    assert shipped == spec
    assert shipped.spec_key() == spec.spec_key()
    # The generic loader dispatches to the same class.
    assert spec_from_json(spec.to_json()) == spec
    return shipped


def _assert_bit_identical(direct, rebuilt, solver, options=None):
    """Solve both models fresh and compare every bit that matters."""
    r_direct = solver(direct, options or MINLPOptions())
    r_rebuilt = solver(rebuilt, options or MINLPOptions())
    assert r_rebuilt.objective.hex() == r_direct.objective.hex()
    for comp in (I, L, A, O):
        name = VAR_NAMES[comp]
        assert r_rebuilt.solution[name].hex() == r_direct.solution[name].hex()
    assert r_rebuilt.nodes == r_direct.nodes
    assert r_rebuilt.cuts_added == r_direct.cuts_added
    return r_direct, r_rebuilt


@pytest.mark.parametrize("layout", LAYOUTS, ids=lambda v: v.name.lower())
@pytest.mark.parametrize("method", sorted(SOLVERS))
def test_table1_layouts_bit_identical(calibrated, layout, method):
    case, fits = calibrated
    spec = layout_problem_spec_for_case(case, fits, layout=layout)
    direct = layout_model_for_case(case, fits, layout=layout)
    rebuilt = build_layout_model_from_spec(_round_trip(spec))
    _assert_bit_identical(direct, rebuilt, SOLVERS[method])


def test_spec_payload_is_pure_json(calibrated):
    """The shipped payload contains no live objects, only JSON scalars."""
    case, fits = calibrated
    spec = layout_problem_spec_for_case(case, fits)
    text = json.dumps(spec.to_dict(), allow_nan=False)  # raises on non-JSON
    assert "PerfModel" not in text and "Model" not in text


def test_dict_payload_builds_the_same_model(calibrated):
    """build_from_spec accepts the raw stamped dict, not just the dataclass."""
    case, fits = calibrated
    spec = layout_problem_spec_for_case(case, fits)
    from_payload = build_layout_model_from_spec(json.loads(spec.to_json()))
    direct = layout_model_for_case(case, fits)
    _assert_bit_identical(direct, from_payload, solve_lpnlp)


def test_ladder_with_reuse_family_bit_identical(calibrated):
    """A warm family over rebuilt specs matches one over in-memory models."""
    from dataclasses import replace

    case, fits = calibrated
    fam_direct, fam_spec = SolveFamily(), SolveFamily()
    for n in SIZES:
        sized = make_case("1deg", n, seed=0)
        spec = layout_problem_spec_for_case(sized, fits)
        direct = layout_model_for_case(sized, fits)
        rebuilt = build_layout_model_from_spec(_round_trip(spec))
        r_direct = solve_lpnlp(direct, replace(MINLPOptions(), reuse=fam_direct))
        r_rebuilt = solve_lpnlp(rebuilt, replace(MINLPOptions(), reuse=fam_spec))
        assert r_rebuilt.objective.hex() == r_direct.objective.hex(), n
        assert r_rebuilt.nodes == r_direct.nodes, n
        for comp in (I, L, A, O):
            name = VAR_NAMES[comp]
            assert r_rebuilt.solution[name].hex() == r_direct.solution[name].hex()
    # Both families saw the same structures, so the warm pools agree too.
    assert fam_spec.stats()["channels"] == fam_direct.stats()["channels"] == 1


def test_workers_gt_one_bit_identical(calibrated):
    """Spec round-trip of a workers=2 options block changes nothing."""
    from repro.minlp.options import minlp_options_from_dict, minlp_options_to_dict

    case, fits = calibrated
    options = MINLPOptions(workers=2)
    shipped_options = minlp_options_from_dict(
        json.loads(json.dumps(minlp_options_to_dict(options)))
    )
    assert shipped_options == options
    spec = layout_problem_spec_for_case(case, fits)
    direct = layout_model_for_case(case, fits)
    rebuilt = build_layout_model_from_spec(_round_trip(spec))
    _assert_bit_identical(direct, rebuilt, solve_lpnlp, options=shipped_options)


def test_tune_spec_replay_matches_pipeline(calibrated):
    """A TuneSpec with pinned curves replays the exact pipeline result."""
    case, fits = calibrated
    pipeline = HSLBPipeline(case)
    in_memory = pipeline.run(fits=fits)

    spec = pipeline.to_spec(curves=fits)
    shipped = TuneSpec.from_json(spec.to_json())
    assert shipped == spec and shipped.spec_key() == spec.spec_key()
    replayed = shipped.run()

    assert replayed.predicted_total.hex() == in_memory.predicted_total.hex()
    assert replayed.allocation == in_memory.allocation
    assert (
        replayed.solve.solver_result.nodes == in_memory.solve.solver_result.nodes
    )
    assert replayed.actual_total == pytest.approx(in_memory.actual_total)


def test_tune_spec_with_benchmarks_matches_pipeline(calibrated):
    """Pinned raw samples (skip gather, refit) also replay bit-identically."""
    case, _ = calibrated
    pipeline = HSLBPipeline(case)
    data = pipeline.gather()
    in_memory = pipeline.run(data=data)

    shipped = TuneSpec.from_json(pipeline.to_spec(benchmarks=data).to_json())
    replayed = shipped.run()
    assert replayed.predicted_total.hex() == in_memory.predicted_total.hex()
    assert replayed.allocation == in_memory.allocation
