"""Golden spec files: frozen requests whose hash and solve must not drift.

Each file under ``golden/`` is a fully pinned :class:`~repro.spec.TuneSpec`
(curves included, so no re-measuring) plus the expected ``spec_key``,
optimum (as a float hex string), allocation, and branch-and-bound node
count.  CI's ``spec-golden`` job runs exactly this module: a change that
shifts the canonical payload bytes (hash drift) or the solver's path
through the tree (statistics drift) fails here before it reaches users'
persisted specs.

Regenerate deliberately (and flag the compatibility break in the PR) by
re-running the recipe in each file's ``expected`` block against the new
code; see docs/specs.md.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.spec import TuneSpec, spec_from_dict, spec_key

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_FILES = sorted(GOLDEN_DIR.glob("*.json"))


def _load(path):
    payload = json.loads(path.read_text())
    return payload["spec"], payload["expected"]


def test_golden_suite_present():
    assert len(GOLDEN_FILES) >= 2, "the spec-golden job needs its fixtures"


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=lambda p: p.stem)
def test_spec_key_stable(path):
    """Canonical payload bytes have not drifted since the file was frozen."""
    spec_payload, expected = _load(path)
    assert spec_key(spec_payload) == expected["spec_key"]
    spec = spec_from_dict(spec_payload)
    assert isinstance(spec, TuneSpec)
    assert spec.spec_key() == expected["spec_key"]
    # A full JSON round-trip of the rebuilt dataclass lands on the same key.
    assert TuneSpec.from_json(spec.to_json()).spec_key() == expected["spec_key"]


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=lambda p: p.stem)
def test_solve_statistics_stable(path):
    """Replaying the frozen request reproduces the frozen solve, bit for bit."""
    spec_payload, expected = _load(path)
    result = spec_from_dict(spec_payload).run()
    assert result.predicted_total.hex() == expected["predicted_total_hex"]
    assert {c.value: n for c, n in result.allocation.items()} == expected[
        "allocation"
    ]
    assert result.solve.solver_result.nodes == expected["bnb_nodes"]
