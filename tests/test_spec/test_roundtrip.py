"""Property tests: every spec survives JSON round-trips structurally intact.

Hypothesis drives randomized machine/case/curve/layout/options/tune specs
through ``to_json -> from_json`` and asserts dataclass equality plus
``spec_key`` stability — float fields use full-precision ``repr`` in
canonical JSON, so even adversarial doubles must round-trip exactly.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.minlp.options import (
    BranchRule,
    MINLPOptions,
    NodeSelection,
    VarBranchRule,
    minlp_options_to_dict,
)
from repro.spec import (
    BudgetSpec,
    CaseSpec,
    CurveSpec,
    LayoutProblemSpec,
    MachineSpec,
    SolvePointSpec,
    TuneSpec,
    canonical_json,
    spec_from_json,
)

COMPONENTS = ("atm", "ocn", "ice", "lnd")

# ``x + 0.0`` folds -0.0 into 0.0: the two compare equal as dataclasses but
# serialize to different canonical bytes, which would fake a spec_key
# mismatch between equal specs.
finite = st.floats(allow_nan=False, allow_infinity=False).map(lambda x: x + 0.0)
# PerfModel validates a/b/c/d >= 0, so curve coefficients draw from here.
nonneg = st.floats(
    min_value=0, allow_nan=False, allow_infinity=False
).map(lambda x: x + 0.0)
positive = st.floats(min_value=1e-9, max_value=1e9, allow_nan=False)
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-", min_size=1, max_size=16
)

machines = st.builds(
    MachineSpec,
    name=names,
    nodes=st.integers(1, 10**6),
    cores_per_node=st.integers(1, 256),
    mpi_tasks_per_node=st.integers(1, 64),
    threads_per_task=st.integers(1, 64),
    relative_speed=positive,
)

cases = st.builds(
    CaseSpec,
    resolution=st.sampled_from(("1deg", "8th")),
    total_nodes=st.integers(8, 65536),
    layout=st.integers(1, 3),
    unconstrained_ocean=st.booleans(),
    seed=st.integers(0, 2**31 - 1),
    machine=st.none() | machines,
)

curves = st.builds(CurveSpec, a=nonneg, b=nonneg, c=nonneg, d=nonneg)

curve_maps = st.fixed_dictionaries(
    {comp: curves.map(lambda c: c.to_dict()) for comp in COMPONENTS}
)

bound_maps = st.fixed_dictionaries(
    {
        comp: st.tuples(st.integers(1, 64), st.integers(64, 4096))
        for comp in COMPONENTS
    }
)

atm_alloweds = st.none() | st.fixed_dictionaries(
    {
        "values": st.none() | st.tuples(st.integers(1, 512), st.integers(1, 512)),
        "lo": st.integers(1, 64),
        "hi": st.integers(64, 4096),
    }
)

layout_problems = st.builds(
    LayoutProblemSpec,
    layout=st.integers(1, 3),
    total_nodes=st.integers(8, 65536),
    curves=curve_maps,
    bounds=bound_maps,
    ocn_allowed=st.none() | st.tuples(st.integers(1, 4096), st.integers(1, 4096)),
    atm_allowed=atm_alloweds,
    objective=st.sampled_from(("min_max", "max_min", "min_sum")),
    tsync=st.none() | positive,
    fine_tuning=st.booleans(),
    name=names,
)

minlp_options = st.builds(
    MINLPOptions,
    rel_gap=positive,
    abs_gap=positive,
    int_tol=positive,
    max_nodes=st.integers(1, 10**6),
    time_limit=positive,
    branch_rule=st.sampled_from(BranchRule),
    var_branch_rule=st.sampled_from(VarBranchRule),
    node_selection=st.sampled_from(NodeSelection),
    require_convex=st.booleans(),
    max_cut_rounds=st.integers(1, 100),
    use_warm_start=st.booleans(),
    workers=st.integers(1, 8),
    evaluator=st.sampled_from(("kernel", "scalar", "tree")),
)

solve_points = st.builds(
    SolvePointSpec,
    problem=layout_problems,
    method=st.sampled_from(("lpnlp", "bnb", "oracle")),
    options=st.none() | minlp_options.map(minlp_options_to_dict),
)

# An all-None budget serializes as no budget at all, so only non-empty
# budgets round-trip to an equal dataclass.
budgets = st.builds(
    BudgetSpec,
    deadline=st.none() | positive,
    max_retries=st.none() | st.integers(1, 10),
).filter(lambda b: not b.empty)

_samples = st.lists(
    st.tuples(st.integers(1, 4096), positive), min_size=1, max_size=5
)
benchmark_maps = st.fixed_dictionaries({comp: _samples for comp in COMPONENTS})

tunes = st.builds(
    TuneSpec,
    case=cases,
    points=st.integers(2, 10),
    objective=st.sampled_from(("min_max", "max_min", "min_sum")),
    method=st.sampled_from(("lpnlp", "bnb", "oracle")),
    fine_tuning=st.booleans(),
    reuse=st.booleans(),
    curves=st.none() | curve_maps,
    benchmarks=st.none(),
    options=st.none() | minlp_options.map(minlp_options_to_dict),
    budget=st.none() | budgets,
)


def _assert_round_trips(spec):
    cls = type(spec)
    rebuilt = cls.from_json(spec.to_json())
    assert rebuilt == spec
    assert rebuilt.spec_key() == spec.spec_key()
    # Hashing is deterministic and the canonical payload is valid JSON.
    assert json.loads(canonical_json(spec.to_dict())) == spec.to_dict()


@settings(max_examples=50, deadline=None)
@given(machines)
def test_machine_round_trip(spec):
    _assert_round_trips(spec)
    assert MachineSpec.from_machine(spec.to_machine()) == spec


@settings(max_examples=50, deadline=None)
@given(cases)
def test_case_round_trip(spec):
    _assert_round_trips(spec)
    assert spec_from_json(spec.to_json()) == spec


@settings(max_examples=100, deadline=None)
@given(curves)
def test_curve_round_trip_exact_floats(spec):
    rebuilt = CurveSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt == spec  # bit-exact: repr round-trips every finite double
    model = spec.to_perf()
    assert CurveSpec.from_perf(model) == spec


@settings(max_examples=50, deadline=None)
@given(layout_problems)
def test_layout_problem_round_trip(spec):
    _assert_round_trips(spec)
    assert spec_from_json(spec.to_json()) == spec


@settings(max_examples=50, deadline=None)
@given(solve_points)
def test_solve_point_round_trip(spec):
    _assert_round_trips(spec)
    if spec.options is not None:
        assert spec.minlp_options().to_dict() == spec.options


@settings(max_examples=50, deadline=None)
@given(tunes)
def test_tune_round_trip(spec):
    _assert_round_trips(spec)
    assert spec_from_json(spec.to_json()) == spec


@settings(max_examples=50, deadline=None)
@given(tunes, tunes)
def test_spec_key_separates_distinct_specs(a, b):
    """Equal keys iff equal specs — the cache/checkpoint identity contract."""
    assert (a.spec_key() == b.spec_key()) == (a == b)


@settings(max_examples=25, deadline=None)
@given(benchmark_maps, cases)
def test_tune_with_benchmarks_round_trip(samples, case):
    benchmarks = {
        comp: {
            "nodes": [n for n, _ in pairs],
            "seconds": [t for _, t in pairs],
        }
        for comp, pairs in samples.items()
    }
    spec = TuneSpec(case=case, benchmarks=benchmarks)
    _assert_round_trips(spec)


def test_curves_and_benchmarks_are_exclusive():
    case = CaseSpec(resolution="1deg", total_nodes=128)
    with pytest.raises(ConfigurationError, match="not both"):
        TuneSpec(
            case=case,
            curves={"atm": {"a": 1.0}},
            benchmarks={"atm": {"nodes": [1], "seconds": [1.0]}},
        )


def test_unknown_kind_rejected():
    payload = CaseSpec(resolution="1deg", total_nodes=128).to_dict()
    payload["kind"] = "volcano"
    with pytest.raises(ConfigurationError, match="unknown spec kind"):
        spec_from_json(json.dumps(payload))
