import pytest

from repro import telemetry
from repro.telemetry import MetricsRegistry


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    """Every test starts and ends with telemetry disabled.

    The module-level registry is process-global state; leaking an enabled
    registry into the rest of the suite would silently change what other
    tests measure (never what they compute — that's the whole contract).
    """
    telemetry.disable()
    yield
    telemetry.disable()


@pytest.fixture
def registry() -> MetricsRegistry:
    """A fresh registry installed as the active one."""
    return telemetry.enable(MetricsRegistry())
