"""The module-level API: enable/disable, fast paths, env auto-enable."""

import os
import subprocess
import sys
from pathlib import Path

from repro import telemetry
from repro.telemetry import MetricsRegistry
from repro.telemetry.spans import NOOP_SPAN


class TestDisabledFastPath:
    def test_recording_is_a_noop(self):
        telemetry.count("x")
        telemetry.gauge("g", 1.0)
        telemetry.observe("h", 1.0)
        assert not telemetry.enabled()
        assert telemetry.get_registry() is None

    def test_span_returns_the_shared_singleton(self):
        assert telemetry.span("anything") is NOOP_SPAN
        assert telemetry.span("other") is NOOP_SPAN

    def test_delta_helpers_tolerate_disabled(self):
        assert telemetry.mark() is None
        assert telemetry.export_delta(None) is None
        telemetry.merge_delta(None)
        telemetry.merge_delta({"counters": {"x": [{"labels": {}, "value": 1}]}})


class TestEnableDisable:
    def test_enable_installs_and_routes(self, registry):
        telemetry.count("x", 2, tier="warm")
        assert registry.get_count("x", tier="warm") == 2
        with telemetry.span("unit"):
            pass
        assert "unit|" in registry.spans.aggregates()

    def test_enable_is_idempotent(self, registry):
        assert telemetry.enable() is registry

    def test_enable_with_registry_swaps(self, registry):
        fresh = MetricsRegistry()
        assert telemetry.enable(fresh) is fresh
        assert telemetry.get_registry() is fresh

    def test_disable_drops_the_registry(self, registry):
        telemetry.disable()
        assert not telemetry.enabled()
        assert telemetry.span("x") is NOOP_SPAN

    def test_delta_ships_between_registries(self, registry):
        baseline = telemetry.mark()
        telemetry.count("x", 5)
        delta = telemetry.export_delta(baseline)
        other = telemetry.enable(MetricsRegistry())
        telemetry.merge_delta(delta)
        assert other.get_count("x") == 5

    def test_export_delta_with_none_baseline_exports_everything(self, registry):
        telemetry.count("x", 7)
        delta = telemetry.export_delta(None)
        assert delta["counters"]["x"][0]["value"] == 7


class TestEnvAutoEnable:
    def _enabled_under(self, value: str | None) -> bool:
        env = dict(os.environ)
        env.pop("REPRO_TELEMETRY", None)
        if value is not None:
            env["REPRO_TELEMETRY"] = value
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src
        out = subprocess.run(
            [sys.executable, "-c",
             "import repro.telemetry as t; print(t.enabled())"],
            env=env, capture_output=True, text=True, check=True,
        )
        return out.stdout.strip() == "True"

    def test_default_is_off(self):
        assert self._enabled_under(None) is False

    def test_one_turns_it_on(self):
        assert self._enabled_under("1") is True

    def test_zero_stays_off(self):
        assert self._enabled_under("0") is False
