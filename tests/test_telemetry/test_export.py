"""Exporters: Prometheus text exposition validity and the report table."""

import re

from repro.telemetry import MetricsRegistry, names, render_report, to_prometheus

# One exposition line: metric name, optional {label="value",...} block, a
# number (int, float, or +Inf is never a value here — only a label).
LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*")*\})?'
    r' -?[0-9]+(\.[0-9]+)?([eE][+-][0-9]+)?$'
)
TYPE_LINE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")


def full_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.count(names.SERVICE_REQUESTS, 3, status="ok", tier="exact")
    reg.count(names.MINLP_NODES, 41, solver="lpnlp")
    reg.gauge(names.SERVICE_QUEUE_DEPTH, 2)
    reg.observe(names.SERVICE_BATCH_SIZE, 1)
    reg.observe(names.SERVICE_BATCH_SIZE, 5)
    with reg.spans.open("bnb.node"):
        with reg.spans.open("bnb.nlp"):
            pass
    return reg


class TestPrometheusFormat:
    def test_every_line_is_valid_exposition(self):
        text = to_prometheus(full_registry().snapshot())
        assert text.endswith("\n")
        for line in text.rstrip("\n").split("\n"):
            assert TYPE_LINE.match(line) or LINE.match(line), line

    def test_counter_names_get_total_suffix_and_underscores(self):
        text = to_prometheus(full_registry().snapshot())
        assert "service_requests_total{" in text
        assert "minlp_nodes_total{" in text
        metric_names = (
            line.split("{")[0].split(" ")[0] for line in text.splitlines()
            if not line.startswith("#")
        )
        assert all("." not in name for name in metric_names)

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = to_prometheus(full_registry().snapshot())
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("service_batch_size_bucket")
        ]
        assert buckets == sorted(buckets)          # monotone non-decreasing
        assert 'le="+Inf"} 2' in text              # final bucket == count
        assert "service_batch_size_sum 6" in text
        assert "service_batch_size_count 2" in text

    def test_span_aggregates_export_as_counter_pair(self):
        text = to_prometheus(full_registry().snapshot())
        assert "# TYPE repro_span_seconds_total counter" in text
        assert 'repro_span_count_total{name="bnb.nlp",parent="bnb.node"} 1' in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.count("x", 1, path='a"b\\c\nd')
        text = to_prometheus(reg.snapshot())
        assert 'path="a\\"b\\\\c\\nd"' in text
        for line in text.rstrip("\n").split("\n"):
            assert TYPE_LINE.match(line) or LINE.match(line), line

    def test_empty_snapshot_exports_empty_string(self):
        assert to_prometheus(MetricsRegistry().snapshot()) == ""


class TestReport:
    def test_sections_and_series_present(self):
        report = render_report(full_registry().snapshot())
        assert "counters and gauges" in report
        assert "histograms" in report
        assert "spans" in report
        assert names.SERVICE_REQUESTS in report
        assert "status=ok" in report
        assert "bnb.nlp" in report

    def test_empty_snapshot(self):
        assert render_report(MetricsRegistry().snapshot()) == (
            "(no telemetry recorded)\n"
        )
