"""Instrumentation counts match solver statistics, and never change them.

The solvers already report their own statistics (``MINLPResult.nodes``,
``nlp_solves``, ...); telemetry records the same events from inside the
loops.  These tests pin the two views to each other — a drifting counter
means an instrumentation point moved off the real event — and pin the
core contract: enabling telemetry changes no result bit.
"""

from repro import telemetry
from repro.expr.node import const, var
from repro.kernels import KernelCache
from repro.minlp import solve_lpnlp, solve_nlp_bnb
from repro.model import Model, Objective, Sense, VarType
from repro.telemetry import MetricsRegistry, names


def two_component_model(N=10, a1=40.0, a2=60.0):
    m = Model("two")
    T = m.add_variable("T", lb=0.0, ub=10_000.0)
    n1 = m.add_variable("n1", VarType.INTEGER, 1, N)
    n2 = m.add_variable("n2", VarType.INTEGER, 1, N)
    m.add_constraint("c1", a1 / n1.ref() + 1.0 - T.ref(), Sense.LE, 0.0)
    m.add_constraint("c2", a2 / n2.ref() + 1.0 - T.ref(), Sense.LE, 0.0)
    m.add_constraint("cap", n1.ref() + n2.ref(), Sense.LE, float(N))
    m.set_objective(Objective("obj", T.ref()))
    return m


class TestSolverCounters:
    def test_lpnlp_counts_match_result_statistics(self, registry):
        res = solve_lpnlp(two_component_model())
        assert registry.get_count(names.MINLP_SOLVES, solver="lpnlp") == 1
        assert registry.get_count(names.MINLP_NODES, solver="lpnlp") == res.nodes
        assert (registry.get_count(names.MINLP_NLP_SOLVES, solver="lpnlp")
                == res.nlp_solves)
        assert registry.get_count(names.MINLP_CUTS_ADDED) == res.cuts_added
        assert registry.get_count(names.MINLP_LP_ITERATIONS) == res.lp_iterations

    def test_bnb_counts_and_spans_match_result_statistics(self, registry):
        res = solve_nlp_bnb(two_component_model())
        assert registry.get_count(names.MINLP_SOLVES, solver="bnb") == 1
        assert registry.get_count(names.MINLP_NODES, solver="bnb") == res.nodes
        assert (registry.get_count(names.MINLP_NLP_SOLVES, solver="bnb")
                == res.nlp_solves)
        # One "bnb.node" span per node the loop actually processed.
        agg = registry.spans.aggregates()
        assert agg["bnb.node|"]["count"] == res.nodes
        # NLP solves nest inside node spans.
        assert any(key.startswith("bnb.nlp|") for key in agg)

    def test_counters_accumulate_across_solves(self, registry):
        solve_lpnlp(two_component_model())
        solve_lpnlp(two_component_model(N=12))
        assert registry.get_count(names.MINLP_SOLVES, solver="lpnlp") == 2


class TestKernelCacheCounters:
    def test_hits_misses_compiles(self, registry):
        cache = KernelCache()
        expr = const(8000.0) / var("n") + const(18.0)
        cache.smooth(expr, {"n": 0})
        cache.smooth(expr, {"n": 0})
        assert registry.get_count(names.KERNEL_MISSES) == 1
        assert registry.get_count(names.KERNEL_COMPILES) == 1
        assert registry.get_count(names.KERNEL_HITS) == 1

    def test_telemetry_mirrors_the_cache_counters(self, registry):
        cache = KernelCache()
        cache.batch([const(2.0) * var("n")], {"n": 0})
        cache.batch([const(2.0) * var("n")], {"n": 0})
        assert (registry.get_count(names.KERNEL_HITS)
                == cache.counters.get("kernel_hits"))
        assert (registry.get_count(names.KERNEL_MISSES)
                == cache.counters.get("kernel_misses"))


class TestBitIdentity:
    """Telemetry on vs off: identical results, to the float bit."""

    def assert_identical(self, a, b):
        assert a.status is b.status
        assert float(a.objective).hex() == float(b.objective).hex()
        assert a.solution == b.solution
        assert a.nodes == b.nodes
        assert a.nlp_solves == b.nlp_solves
        assert a.cuts_added == b.cuts_added
        assert a.lp_iterations == b.lp_iterations

    def test_lpnlp(self):
        telemetry.disable()
        off = solve_lpnlp(two_component_model())
        telemetry.enable(MetricsRegistry())
        on = solve_lpnlp(two_component_model())
        self.assert_identical(on, off)

    def test_bnb(self):
        telemetry.disable()
        off = solve_nlp_bnb(two_component_model())
        telemetry.enable(MetricsRegistry())
        on = solve_nlp_bnb(two_component_model())
        self.assert_identical(on, off)
