"""MetricsRegistry: counters, gauges, histograms, snapshots, deltas."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.telemetry import MetricsRegistry, names
from repro.telemetry.names import SIZE_BUCKETS
from repro.telemetry.registry import labels_key


class TestCounters:
    def test_increment_and_read(self):
        reg = MetricsRegistry()
        reg.count("x")
        reg.count("x", 4)
        assert reg.get_count("x") == 5

    def test_never_incremented_reads_zero(self):
        assert MetricsRegistry().get_count("nope") == 0

    def test_label_sets_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.count("req", status="ok")
        reg.count("req", status="ok")
        reg.count("req", status="rejected")
        assert reg.get_count("req", status="ok") == 2
        assert reg.get_count("req", status="rejected") == 1
        assert reg.counter_total("req") == 3

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.count("req", a="1", b="2")
        assert reg.get_count("req", b="2", a="1") == 1
        assert labels_key({"b": 2, "a": 1}) == labels_key({"a": "1", "b": "2"})


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("depth", 3)
        reg.gauge("depth", 7)
        assert reg.get_gauge("depth") == 7.0

    def test_unset_gauge_is_none(self):
        assert MetricsRegistry().get_gauge("depth") is None


class TestHistograms:
    def test_bounds_come_from_the_catalog(self):
        reg = MetricsRegistry()
        reg.observe(names.SERVICE_BATCH_SIZE, 3)
        entry = reg.snapshot()["histograms"][names.SERVICE_BATCH_SIZE][0]
        assert tuple(entry["bounds"]) == SIZE_BUCKETS

    def test_bucketing_is_le_inclusive(self):
        # bounds (1, 2, 4, ...): a value equal to a bound lands in that
        # bound's bucket (Prometheus `le` semantics), one past it in the next.
        reg = MetricsRegistry()
        reg.observe(names.SERVICE_BATCH_SIZE, 1)
        reg.observe(names.SERVICE_BATCH_SIZE, 2)
        reg.observe(names.SERVICE_BATCH_SIZE, 3)
        reg.observe(names.SERVICE_BATCH_SIZE, 1000)  # past the last bound
        entry = reg.snapshot()["histograms"][names.SERVICE_BATCH_SIZE][0]
        assert entry["counts"][0] == 1          # le=1
        assert entry["counts"][1] == 1          # le=2
        assert entry["counts"][2] == 1          # le=4 (the 3)
        assert entry["counts"][-1] == 1         # +Inf overflow slot
        assert entry["count"] == 4
        assert entry["sum"] == pytest.approx(1 + 2 + 3 + 1000)

    def test_uncataloged_name_gets_default_buckets(self):
        reg = MetricsRegistry()
        reg.observe("custom.seconds", 0.1)
        entry = reg.snapshot()["histograms"]["custom.seconds"][0]
        assert tuple(entry["bounds"]) == names.DEFAULT_BUCKETS


class TestSnapshot:
    def test_snapshot_is_json_safe_and_sorted(self):
        reg = MetricsRegistry()
        reg.count("b.metric", tier="warm")
        reg.count("a.metric")
        reg.gauge("g", 1.5)
        reg.observe(names.SERVICE_REQUEST_SECONDS, 0.01, kind="solve_point")
        with reg.spans.open("unit"):
            pass
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.metric", "b.metric"]
        json.dumps(snap)  # must not raise

    def test_clear_empties_everything(self):
        reg = MetricsRegistry()
        reg.count("x")
        reg.gauge("g", 1)
        reg.observe("h", 1)
        with reg.spans.open("s"):
            pass
        reg.clear()
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert snap["spans"] == {}


class TestDeltas:
    """The FamilyDelta discipline: mark -> export_delta -> merge_delta."""

    def test_export_contains_only_the_diff(self):
        reg = MetricsRegistry()
        reg.count("x", 10)
        baseline = reg.mark()
        reg.count("x", 3)
        reg.count("y")
        delta = reg.export_delta(baseline)
        assert delta["counters"]["x"][0]["value"] == 3
        assert delta["counters"]["y"][0]["value"] == 1

    def test_untouched_series_are_dropped(self):
        reg = MetricsRegistry()
        reg.count("x", 10)
        reg.observe("h", 1.0)
        baseline = reg.mark()
        delta = reg.export_delta(baseline)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}
        assert delta["spans"] == {}

    def test_merge_equals_doing_the_work_in_one_registry(self):
        solo = MetricsRegistry()
        parent, worker = MetricsRegistry(), MetricsRegistry()
        for reg in (solo, parent):
            reg.count("req", 2, status="ok")
            reg.observe(names.SERVICE_BATCH_SIZE, 4)
        baseline = worker.mark()
        for reg in (solo, worker):
            reg.count("req", 3, status="ok")
            reg.count("req", 1, status="rejected")
            reg.observe(names.SERVICE_BATCH_SIZE, 2)
            reg.spans.merge_aggregate("solve", None, 5, 1.25)
        parent.merge_delta(worker.export_delta(baseline))
        assert parent.snapshot() == solo.snapshot()

    def test_gauges_are_last_write_wins_across_merge(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.gauge("depth", 3)
        worker.gauge("depth", 9)
        parent.merge_delta(worker.export_delta(worker.mark()))
        assert parent.get_gauge("depth") == 9.0

    def test_merge_rejects_mismatched_bucket_bounds(self):
        parent = MetricsRegistry()
        parent.observe("h", 1.0)  # default latency bounds
        delta = {
            "counters": {}, "gauges": {}, "spans": {},
            "histograms": {"h": [{
                "labels": {}, "bounds": [1.0, 2.0], "counts": [1, 0, 0],
                "sum": 1.0, "count": 1,
            }]},
        }
        with pytest.raises(ConfigurationError):
            parent.merge_delta(delta)

    def test_delta_round_trips_through_json(self):
        reg = MetricsRegistry()
        baseline = reg.mark()
        reg.count("x", tier="warm")
        reg.observe(names.SERVICE_BATCH_SIZE, 8)
        delta = json.loads(json.dumps(reg.export_delta(baseline)))
        other = MetricsRegistry()
        other.merge_delta(delta)
        assert other.get_count("x", tier="warm") == 1
