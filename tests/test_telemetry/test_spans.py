"""Tracing spans: nesting, the bounded ring buffer, aggregates."""

import threading

from repro.telemetry import SpanRecorder
from repro.telemetry.spans import NOOP_SPAN, _NoopSpan


class TestNesting:
    def test_parent_and_depth(self):
        rec = SpanRecorder()
        with rec.open("outer"):
            with rec.open("inner"):
                pass
        inner, outer = rec.recent()[0], rec.recent()[1]
        assert (inner.name, inner.parent, inner.depth) == ("inner", "outer", 1)
        assert (outer.name, outer.parent, outer.depth) == ("outer", None, 0)
        assert inner.duration >= 0.0
        assert outer.duration >= inner.duration

    def test_siblings_share_a_parent(self):
        rec = SpanRecorder()
        with rec.open("outer"):
            with rec.open("a"):
                pass
            with rec.open("b"):
                pass
        parents = {r.name: r.parent for r in rec.recent()}
        assert parents == {"a": "outer", "b": "outer", "outer": None}

    def test_threads_have_independent_stacks(self):
        rec = SpanRecorder()
        seen = {}

        def worker():
            with rec.open("threaded") as span:
                seen["parent"] = span.parent

        with rec.open("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The worker thread's stack is empty: "main" is not its parent.
        assert seen["parent"] is None


class TestRingBuffer:
    def test_ring_is_bounded_but_aggregates_are_not(self):
        rec = SpanRecorder(capacity=4)
        for _ in range(10):
            with rec.open("unit"):
                pass
        assert len(rec.recent()) == 4
        agg = rec.aggregates()["unit|"]
        assert agg["count"] == 10
        assert agg["seconds"] >= 0.0


class TestAggregates:
    def test_key_joins_name_and_parent(self):
        rec = SpanRecorder()
        with rec.open("outer"):
            with rec.open("inner"):
                pass
        keys = set(rec.aggregates())
        assert keys == {"outer|", "inner|outer"}

    def test_merge_aggregate_is_additive(self):
        rec = SpanRecorder()
        rec.merge_aggregate("solve", None, 3, 1.5)
        rec.merge_aggregate("solve", None, 2, 0.5)
        agg = rec.aggregates()["solve|"]
        assert agg["count"] == 5
        assert agg["seconds"] == 2.0

    def test_clear(self):
        rec = SpanRecorder()
        with rec.open("unit"):
            pass
        rec.clear()
        assert rec.recent() == []
        assert rec.aggregates() == {}


class TestNoopSpan:
    def test_singleton_contextmanager(self):
        assert isinstance(NOOP_SPAN, _NoopSpan)
        with NOOP_SPAN as span:
            assert span is NOOP_SPAN

    def test_reentrant(self):
        with NOOP_SPAN:
            with NOOP_SPAN:
                pass
