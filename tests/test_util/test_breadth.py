"""Breadth/edge-case tests across small utility surfaces."""

import pytest

from repro.cesm import ComponentId
from repro.hslb.report import format_table3_block
from repro.util.tables import TextTable

A, O, I, L = ComponentId.ATM, ComponentId.OCN, ComponentId.ICE, ComponentId.LND


class TestTextTableEdges:
    def test_empty_table_renders_headers(self):
        t = TextTable(["a", "bb"])
        out = t.render()
        assert "a" in out and "bb" in out
        assert len(out.splitlines()) == 2  # header + rule

    def test_mixed_cell_types(self):
        t = TextTable(["k", "v"])
        t.add_row(["int", 42])
        t.add_row(["float", 1.5])
        t.add_row(["str", "x"])
        out = t.render()
        assert "42" in out and "1.500" in out and "x" in out

    def test_wide_cells_expand_columns(self):
        t = TextTable(["short"])
        t.add_row(["a-very-long-cell-value"])
        lines = t.render().splitlines()
        assert len(lines[0]) == len("a-very-long-cell-value")

    def test_str_dunder(self):
        t = TextTable(["x"])
        t.add_row([1])
        assert str(t) == t.render()


class TestReportEdges:
    def full_times(self, v):
        return {L: v, I: v, A: v, O: v}

    def test_totals_optional(self):
        text = format_table3_block(
            "t", None, None, self.full_times(1), self.full_times(2.0), None
        )
        assert "Total time, sec" in text

    def test_all_columns_present(self):
        text = format_table3_block(
            "t",
            self.full_times(10),
            self.full_times(1.0),
            self.full_times(12),
            self.full_times(2.0),
            self.full_times(3.0),
            manual_total=4.0,
            predicted_total=5.0,
            actual_total=6.0,
        )
        for col in ("manual # nodes", "manual time, sec", "HSLB # nodes",
                    "HSLB predicted, sec", "HSLB actual, sec"):
            assert col in text
        for v in ("4.000", "5.000", "6.000"):
            assert v in text


class TestOracleEdges:
    def test_single_ocean_value(self):
        from repro.cesm import Layout
        from repro.fitting import PerfModel
        from repro.hslb import LayoutOracle

        perf = {c: PerfModel(a=100.0, d=1.0) for c in (I, L, A, O)}
        bounds = {c: (1, 16) for c in (I, L, A, O)}
        bounds[A] = (2, 16)
        oracle = LayoutOracle(
            Layout.HYBRID, 16, perf, bounds, ocn_allowed=[4]
        )
        res = oracle.solve()
        assert res.allocation[O] == 4

    def test_atm_explicit_singleton(self):
        from repro.cesm import Layout
        from repro.fitting import PerfModel
        from repro.hslb import LayoutOracle

        perf = {c: PerfModel(a=100.0, d=1.0) for c in (I, L, A, O)}
        bounds = {c: (1, 16) for c in (I, L, A, O)}
        oracle = LayoutOracle(
            Layout.HYBRID, 16, perf, bounds,
            atm_allowed={"values": [8], "lo": 8, "hi": 8},
        )
        res = oracle.solve()
        assert res.allocation[A] == 8
        # ice+lnd must fit inside the pinned atmosphere group
        assert res.allocation[I] + res.allocation[L] <= 8

    def test_layout3_with_ocean_set(self):
        from repro.cesm import Layout
        from repro.fitting import PerfModel
        from repro.hslb import LayoutOracle

        perf = {c: PerfModel(a=100.0, d=1.0) for c in (I, L, A, O)}
        bounds = {c: (1, 32) for c in (I, L, A, O)}
        oracle = LayoutOracle(
            Layout.FULLY_SEQUENTIAL, 32, perf, bounds, ocn_allowed=[2, 8, 16]
        )
        res = oracle.solve()
        assert res.allocation[O] == 16  # cheapest allowed ocean


class TestSimulatorOverheadScaling:
    def test_overhead_shrinks_with_atm_nodes(self):
        from repro.cesm import CoupledRunSimulator, make_case

        sim = CoupledRunSimulator(make_case("1deg", 2048, seed=0))
        small = sim.run_coupled({"lnd": 24, "ice": 80, "atm": 104, "ocn": 24})
        large = sim.run_coupled({"lnd": 128, "ice": 512, "atm": 1024, "ocn": 512})
        assert large.overhead < small.overhead


class TestIoRunResultRoundTripJson:
    def test_json_dump_and_shape(self, tmp_path):
        import json

        from repro.cesm import make_case
        from repro.hslb import HSLBPipeline
        from repro.io import run_result_to_dict

        result = HSLBPipeline(make_case("1deg", 128, seed=1)).run()
        payload = run_result_to_dict(result)
        path = tmp_path / "run.json"
        path.write_text(json.dumps(payload))
        loaded = json.loads(path.read_text())
        assert loaded["case"]["seed"] == 1
        assert loaded["predicted_total"] == pytest.approx(result.predicted_total)
