import numpy as np
import pytest

from repro.util.rng import as_rng, keyed_rng, spawn_child
from repro.util.tables import TextTable, format_seconds
from repro.util.timing import Stopwatch


class TestAsRng:
    def test_int_seed_is_deterministic(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestSpawnChild:
    def test_deterministic_per_tag(self):
        a = spawn_child(as_rng(1), "ice").random(4)
        b = spawn_child(as_rng(1), "ice").random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_tags_decorrelated(self):
        a = spawn_child(as_rng(1), "ice").random(4)
        b = spawn_child(as_rng(1), "atm").random(4)
        assert not np.array_equal(a, b)

    def test_different_parents_differ(self):
        a = spawn_child(as_rng(1), "ice").random(4)
        b = spawn_child(as_rng(2), "ice").random(4)
        assert not np.array_equal(a, b)


class TestKeyedRng:
    def test_pure_function_of_key(self):
        a = keyed_rng(3, "bench", "atm:64").random(4)
        b = keyed_rng(3, "bench", "atm:64").random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_tags_differ(self):
        a = keyed_rng(3, "bench", "atm:64").random(4)
        b = keyed_rng(3, "bench", "atm:65").random(4)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = keyed_rng(3, "bench").random(4)
        b = keyed_rng(4, "bench").random(4)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        # Drawing key X first or after key Y must not change X's stream.
        first = keyed_rng(1, "x").random()
        keyed_rng(1, "y").random()
        again = keyed_rng(1, "x").random()
        assert first == again


class TestTextTable:
    def test_renders_aligned_columns(self):
        t = TextTable(["component", "# nodes", "time, sec"], title="demo")
        t.add_row(["atm", 104, 306.952])
        t.add_row(["ocn", 24, 362.669])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "306.952" in out and "362.669" in out
        # all data lines share the same width
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_row_length_mismatch_raises(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            t.add_row([1])

    def test_format_seconds_three_decimals(self):
        assert format_seconds(1.23456) == "1.235"
        assert format_seconds(410.6234) == "410.623"


class TestStopwatch:
    def test_accumulates_phases(self):
        sw = Stopwatch()
        with sw.phase("lp"):
            pass
        with sw.phase("lp"):
            pass
        with sw.phase("nlp"):
            pass
        assert sw.count("lp") == 2
        assert sw.count("nlp") == 1
        assert sw.elapsed("lp") >= 0.0
        assert sw.total() == pytest.approx(sw.elapsed("lp") + sw.elapsed("nlp"))

    def test_unknown_phase_is_zero(self):
        sw = Stopwatch()
        assert sw.elapsed("nothing") == 0.0
        assert sw.count("nothing") == 0

    def test_summary_snapshot(self):
        sw = Stopwatch()
        with sw.phase("x"):
            pass
        summary = sw.summary()
        assert set(summary) == {"x"}
        seconds, count = summary["x"]
        assert count == 1 and seconds >= 0.0

    def test_exception_still_recorded(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            with sw.phase("boom"):
                raise RuntimeError("boom")
        assert sw.count("boom") == 1
