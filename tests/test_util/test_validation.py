import math

import numpy as np
import pytest

from repro.util.validation import (
    check_finite_array,
    check_finite_number,
    check_in_range,
    check_integer,
    check_nonnegative,
    check_positive,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.5, "x") == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive(math.nan, "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive(math.inf, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("3", "x")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_nonnegative(-1e-9, "x")


class TestCheckFiniteNumber:
    def test_accepts_int(self):
        assert check_finite_number(3, "x") == 3

    def test_accepts_numpy_scalar(self):
        assert check_finite_number(np.float64(2.5), "x") == 2.5


class TestCheckInteger:
    def test_accepts_int(self):
        assert check_integer(7, "k") == 7

    def test_accepts_numpy_int(self):
        assert check_integer(np.int64(7), "k") == 7

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_integer(7.0, "k")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_integer(True, "k")


class TestCheckInRange:
    def test_accepts_endpoints(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match=r"in \[0.0, 1.0\]"):
            check_in_range(1.5, "x", 0.0, 1.0)


class TestCheckFiniteArray:
    def test_passes_through_values(self):
        out = check_finite_array([1, 2, 3], "a")
        assert out.dtype == float
        np.testing.assert_allclose(out, [1.0, 2.0, 3.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_finite_array([1.0, math.nan], "a")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_finite_array(np.array([math.inf]), "a")
